//! Schedule-keyed memoization of cost-model evaluations, run as a storage
//! tier: bounded shards with a real eviction policy, snapshot/restore
//! persistence across process restarts, and cross-replica warmth exchange.
//!
//! Training evaluates the cost model millions of times, and early in
//! training (and throughout the immediate-reward mode of Fig. 7) the same
//! `(module, schedule)` pairs recur constantly: every episode starts from
//! the untransformed baseline, popular schedules are re-sampled across
//! trajectories, and PPO revisits the same modules round-robin. The
//! [`EvalCache`] memoizes [`ModuleEstimate`]s under a canonical hash of the
//! module and its per-operation schedules so repeated schedules never re-run
//! the roofline estimator.
//!
//! The cache has two backends:
//!
//! * **Local** (the default) — a two-level table: a frozen [`Arc`]-shared
//!   snapshot plus a small local overlay for new entries. Cloning copies the
//!   overlay but only bumps a reference count for the snapshot;
//!   [`EvalCache::absorb`]ing a clone back walks only its overlay.
//!   [`EvalCache::consolidate`] folds the overlay into the snapshot.
//! * **Shared** — a [`SharedEvalCache`]: one sharded hash table behind
//!   `Arc<Mutex<_>>` shards, so every clone *is* the same table. The rollout
//!   engine and the schedule-search driver put their environments in this
//!   mode ([`EvalCache::make_shared`]) so all workers and all branches of a
//!   search hit one cache — the parallel hit-rate matches serial collection
//!   instead of every worker re-discovering the same schedules. Estimator
//!   runs happen *outside* the shard locks (a lost race costs one duplicate
//!   evaluation, never a wrong value).
//!
//! ## Eviction policy (shared backend)
//!
//! Each shard is a segmented (2Q-style) table. A new key enters the
//! *probation* segment; the first hit promotes it to the *protected*
//! segment (bounded to half the shard, demoting the least valuable
//! protected entry back to probation when over). A full shard evicts one
//! entry per insert — never a wholesale wipe outside [`SharedEvalCache::clear`] —
//! choosing the victim by least estimator-seconds-saved
//! (`estimate.total_s × hit count`), probation before protected, oldest
//! insertion breaking ties. Victim selection is a deterministic total order,
//! so the surviving set never depends on hash-map iteration order.
//!
//! ## Accounting contract
//!
//! Every lookup is classified exactly once, as a hit or a miss. Every
//! estimator run is a miss and charges one unit to the attached
//! [`EvalBudget`], *even when* the subsequent insert loses a same-key race
//! or is immediately evicted: two threads racing on a new key both pay,
//! because both actually ran the estimator. Consequently
//! `evaluations + cache_hits == total_lookups` and
//! `budget.spent() == misses()` hold exactly, with or without eviction
//! churn — eviction affects *which* lookups miss, never how they are
//! counted.
//!
//! Per-[`EvalCache`] hit/miss counters always stay with the handle that
//! observed the lookups (episode accounting), while a [`SharedEvalCache`]
//! additionally keeps global atomic counters across every handle (batch
//! accounting for the search driver) plus insert/evict/promotion counters
//! per shard and globally.
//!
//! ## Persistence and warmth exchange
//!
//! [`SharedEvalCache::snapshot_to`] serializes the table to a compact
//! versioned binary file (magic `MLRC`, format version, FNV-1a checksum
//! trailer); [`SharedEvalCache::restore_from`] merges a snapshot back in.
//! A corrupt or truncated snapshot is rejected *before* any entry is
//! applied — the error is returned, the table is untouched, and the caller
//! cold-starts; restore never panics. [`SharedEvalCache::absorb`] merges
//! another live table with a deterministic conflict rule: the incumbent
//! entry's estimate wins, hit counts are summed (so merged warmth keeps its
//! eviction value). Because keys determine estimates, lookup results are
//! bit-identical regardless of eviction policy, snapshot/restore cycles, or
//! absorb order.
//!
//! Keys are 128 bits (module fingerprint + schedule fingerprint), computed
//! with [`std::collections::hash_map::DefaultHasher`], which is
//! deterministic for a fixed Rust release. A collision would silently serve
//! a wrong estimate; at 2^128 key space this is not a practical concern, and
//! the `cached_estimates_match_uncached` property test exercises the
//! construction.

use std::cmp::Ordering as CmpOrdering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mlir_rl_ir::{Module, OpId};
use mlir_rl_obs::{EventKind, ProbeRef};
use mlir_rl_transforms::ScheduledModule;

use crate::budget::EvalBudget;
use crate::estimator::{CostModel, ModuleEstimate, TimeEstimate};

/// Default maximum number of memoized estimates per cache.
pub const DEFAULT_EVAL_CACHE_CAPACITY: usize = 1 << 16;

/// Maximum number of independently locked shards of a [`SharedEvalCache`].
/// A cache whose capacity is smaller than this uses one shard per entry so
/// the global bound still holds exactly.
pub const SHARED_CACHE_SHARDS: usize = 16;

/// Magic bytes opening a cache snapshot file.
const SNAPSHOT_MAGIC: [u8; 4] = *b"MLRC";

/// Current snapshot format version. Bump on any layout change; restore
/// rejects unknown versions as corrupt rather than guessing.
const SNAPSHOT_VERSION: u32 = 1;

/// Canonical identity of a `(module, schedule)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// Fingerprint of the module structure (name, ops, loop bounds).
    pub module: u64,
    /// Fingerprint of the per-operation schedules.
    pub schedule: u64,
}

/// Fingerprints a module's identity: its name plus everything about each
/// operation the estimator reads — kind, iteration domain, iterator types,
/// indexing maps and arithmetic profile — so two structurally different
/// modules never share a key even if their names collide.
pub fn module_fingerprint(module: &Module) -> u64 {
    let mut h = DefaultHasher::new();
    module.name().hash(&mut h);
    for op in module.ops() {
        op.id.hash(&mut h);
        op.kind.hash(&mut h);
        op.loop_bounds.hash(&mut h);
        op.iterator_types.hash(&mut h);
        op.indexing_maps.hash(&mut h);
        op.arith.hash(&mut h);
    }
    h.finish()
}

/// Fingerprints the schedule state of a module: the ordered transformation
/// list of every operation (which fully determines tiling, interchange
/// order, parallelization, fusion and vectorization state).
pub fn schedule_fingerprint(scheduled: &ScheduledModule) -> u64 {
    let mut h = DefaultHasher::new();
    for state in scheduled.states() {
        state.schedule.hash(&mut h);
        state.fused_into.hash(&mut h);
    }
    h.finish()
}

/// The canonical cache key of a scheduled module.
pub fn schedule_key(scheduled: &ScheduledModule) -> ScheduleKey {
    ScheduleKey {
        module: module_fingerprint(scheduled.module()),
        schedule: schedule_fingerprint(scheduled),
    }
}

/// Why a cache snapshot could not be written or restored. Restore failures
/// leave the table untouched; callers cold-start instead of panicking.
#[derive(Debug)]
pub enum SnapshotError {
    /// The snapshot file could not be read or written.
    Io(std::io::Error),
    /// The snapshot bytes failed structural or checksum validation; the
    /// message names the first check that failed.
    Corrupt(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot io error: {err}"),
            SnapshotError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            SnapshotError::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// Point-in-time occupancy and lifetime counters of one cache shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheShardStats {
    /// Entries currently memoized in this shard.
    pub len: usize,
    /// Maximum entries this shard may hold.
    pub capacity: usize,
    /// Entries currently in the protected segment.
    pub protected: usize,
    /// Entries ever inserted into this shard.
    pub insertions: u64,
    /// Entries ever evicted from this shard.
    pub evictions: u64,
    /// Probation→protected promotions ever performed in this shard.
    pub promotions: u64,
}

/// Which 2Q segment a shard entry currently lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    /// Newly inserted, not yet re-referenced: first in line for eviction.
    Probation,
    /// Hit at least once since insertion; evicted only after probation.
    Protected,
}

/// One memoized estimate plus the bookkeeping the eviction policy reads.
#[derive(Debug, Clone)]
struct CacheEntry {
    estimate: ModuleEstimate,
    /// Lookups served by this entry (summed across merges); together with
    /// the estimate cost this measures estimator-seconds-saved.
    hits: u64,
    segment: Segment,
    /// Per-shard insertion sequence number: the deterministic tie-break for
    /// victim selection, so eviction never depends on hash-map order.
    seq: u64,
}

impl CacheEntry {
    /// Estimator-seconds this entry has saved so far: the victim-selection
    /// value. A never-hit entry has saved nothing and goes first.
    fn saved_s(&self) -> f64 {
        self.estimate.total_s * self.hits as f64
    }
}

/// Deterministic victim order: probation before protected, then least
/// seconds-saved, then oldest insertion. Total (seq is unique per shard),
/// so the minimum is independent of iteration order.
fn victim_order(a: &CacheEntry, b: &CacheEntry) -> CmpOrdering {
    let seg = |e: &CacheEntry| matches!(e.segment, Segment::Protected) as u8;
    seg(a)
        .cmp(&seg(b))
        .then(a.saved_s().total_cmp(&b.saved_s()))
        .then(a.seq.cmp(&b.seq))
}

/// What one shard insert did, for counter and probe accounting.
#[derive(Debug, Clone, Copy, Default)]
struct InsertOutcome {
    /// A new entry was created (false: the key was present; incumbent kept).
    inserted: bool,
    /// Hit count of the entry evicted to make room, if any.
    evicted_hits: Option<u64>,
}

/// Everything one lookup did, for probe emission by the observing handle.
#[derive(Debug, Clone, Copy, Default)]
struct LookupEffects {
    was_hit: bool,
    /// Index of the shard the key maps to.
    shard: u64,
    /// This hit promoted the entry from probation to protected.
    promoted: bool,
    /// The insert after this miss evicted a victim with this hit count.
    evicted_hits: Option<u64>,
}

/// One independently locked segment-structured shard.
#[derive(Debug, Default)]
struct CacheShard {
    map: HashMap<ScheduleKey, CacheEntry>,
    /// Next insertion sequence number.
    next_seq: u64,
    /// Entries currently in the protected segment.
    protected: usize,
    insertions: u64,
    evictions: u64,
    promotions: u64,
}

impl CacheShard {
    /// Records a hit on `key` (which must be present): bumps the entry's
    /// hit count and promotes probation entries, demoting the least
    /// valuable protected entry when the protected segment would exceed
    /// `protected_cap`. Returns whether a promotion happened.
    fn on_hit(&mut self, key: &ScheduleKey, protected_cap: usize) -> bool {
        let entry = self.map.get_mut(key).expect("hit entry must exist");
        entry.hits += 1;
        if entry.segment == Segment::Protected {
            return false;
        }
        entry.segment = Segment::Protected;
        self.protected += 1;
        self.promotions += 1;
        if self.protected > protected_cap {
            // Demote the least valuable *other* protected entry; the entry
            // that just earned promotion keeps it.
            let demote = self
                .map
                .iter()
                .filter(|(k, e)| e.segment == Segment::Protected && *k != key)
                .min_by(|a, b| {
                    a.1.saved_s()
                        .total_cmp(&b.1.saved_s())
                        .then(a.1.seq.cmp(&b.1.seq))
                })
                .map(|(k, _)| *k);
            if let Some(victim) = demote {
                self.map
                    .get_mut(&victim)
                    .expect("victim key just observed")
                    .segment = Segment::Probation;
                self.protected -= 1;
            }
        }
        true
    }

    /// Inserts `key` if absent, evicting one victim first when the shard is
    /// at `cap`. An existing key keeps its incumbent entry untouched.
    fn insert_entry(
        &mut self,
        key: ScheduleKey,
        estimate: ModuleEstimate,
        hits: u64,
        cap: usize,
    ) -> InsertOutcome {
        if self.map.contains_key(&key) {
            return InsertOutcome::default();
        }
        let mut outcome = InsertOutcome {
            inserted: true,
            evicted_hits: None,
        };
        if self.map.len() >= cap {
            let victim = self
                .map
                .iter()
                .min_by(|a, b| victim_order(a.1, b.1))
                .map(|(k, _)| *k);
            if let Some(victim) = victim {
                let evicted = self.map.remove(&victim).expect("victim key just observed");
                if evicted.segment == Segment::Protected {
                    self.protected -= 1;
                }
                self.evictions += 1;
                outcome.evicted_hits = Some(evicted.hits);
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.insert(
            key,
            CacheEntry {
                estimate,
                hits,
                segment: Segment::Probation,
                seq,
            },
        );
        self.insertions += 1;
        outcome
    }
}

/// One sharded, thread-shared memoization table. Cloning shares the table
/// (and the global counters) by reference; handles on any thread see
/// entries inserted by every other handle. See the module docs for the
/// eviction policy, the accounting contract and the persistence format.
#[derive(Debug, Clone)]
pub struct SharedEvalCache {
    shards: Arc<Vec<Mutex<CacheShard>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    insertions: Arc<AtomicU64>,
    evictions: Arc<AtomicU64>,
    promotions: Arc<AtomicU64>,
    /// Every estimator run (miss) charges one unit to this ledger, so a
    /// roster of searchers sharing the table also shares one spend account.
    budget: EvalBudget,
    capacity: usize,
}

impl SharedEvalCache {
    /// Creates a shared cache holding at most `capacity` estimates across
    /// its shards — the bound is global and exact: per-shard capacities sum
    /// to `capacity`, and a capacity below [`SHARED_CACHE_SHARDS`] simply
    /// uses fewer shards instead of silently inflating the bound. A
    /// capacity of zero is clamped to one; use [`SharedEvalCache::try_new`]
    /// to reject it instead.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let shard_count = SHARED_CACHE_SHARDS.min(capacity);
        Self {
            shards: Arc::new((0..shard_count).map(|_| Mutex::default()).collect()),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            insertions: Arc::new(AtomicU64::new(0)),
            evictions: Arc::new(AtomicU64::new(0)),
            promotions: Arc::new(AtomicU64::new(0)),
            budget: EvalBudget::unlimited(),
            capacity,
        }
    }

    /// Like [`SharedEvalCache::new`] but rejecting a zero capacity, for
    /// callers validating user-supplied configuration.
    pub fn try_new(capacity: usize) -> Result<Self, String> {
        if capacity == 0 {
            return Err("shared cache capacity must be at least 1".to_string());
        }
        Ok(Self::new(capacity))
    }

    /// Replaces the table's spend ledger (call before cloning handles: a
    /// clone shares whatever ledger its parent carried). Each estimator run
    /// charges one unit.
    pub fn with_budget(mut self, budget: EvalBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The spend ledger every miss of this table charges.
    pub fn budget(&self) -> &EvalBudget {
        &self.budget
    }

    /// Maximum number of memoized estimates, globally across shards.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn shard_index(&self, key: &ScheduleKey) -> usize {
        // The fingerprints are already well-mixed hashes; fold them down to
        // a shard index.
        let mix = key.module ^ key.schedule.rotate_left(17);
        (mix as usize) % self.shards.len()
    }

    /// Capacity of shard `index`: `capacity` split as evenly as possible,
    /// remainders to the lowest indices, summing exactly to `capacity`.
    fn shard_cap(&self, index: usize) -> usize {
        let n = self.shards.len();
        self.capacity / n + usize::from(index < self.capacity % n)
    }

    /// Protected-segment bound of a shard: half its capacity, rounded up so
    /// a one-entry shard can still hold a protected entry.
    fn protected_cap(&self, index: usize) -> usize {
        self.shard_cap(index).div_ceil(2)
    }

    /// Looks up `key`, running `model` *outside* the shard lock on a miss,
    /// and returns the `project`ed view of the estimate plus what the
    /// lookup did. Two threads racing on the same new key both run the
    /// estimator (same deterministic result) and both count and charge as
    /// misses — see the module-level accounting contract; one insert wins.
    fn lookup_with<T>(
        &self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
        project: impl Fn(&ModuleEstimate) -> T,
    ) -> (T, LookupEffects) {
        let index = self.shard_index(&key);
        let mut effects = LookupEffects {
            shard: index as u64,
            ..LookupEffects::default()
        };
        {
            let mut shard = self.shards[index].lock().expect("cache shard poisoned");
            if shard.map.contains_key(&key) {
                effects.was_hit = true;
                effects.promoted = shard.on_hit(&key, self.protected_cap(index));
                self.hits.fetch_add(1, Ordering::Relaxed);
                if effects.promoted {
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                }
                let value = project(&shard.map[&key].estimate);
                return (value, effects);
            }
        }
        let estimate = model.estimate_scheduled(scheduled);
        let value = project(&estimate);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.budget.charge(1);
        let outcome = self.apply_insert(key, estimate, 0);
        effects.evicted_hits = outcome.evicted_hits;
        (value, effects)
    }

    /// Looks up the total time for `key`, running `model` only on a miss.
    /// Returns `(total_s, was_hit)`.
    pub fn total_s_keyed(
        &self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (f64, bool) {
        let (total_s, effects) = self.lookup_with(key, model, scheduled, |e| e.total_s);
        (total_s, effects.was_hit)
    }

    /// Like [`SharedEvalCache::total_s_keyed`] but returning the whole
    /// estimate (cloned out of the table).
    pub fn estimate_keyed(
        &self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (ModuleEstimate, bool) {
        let (estimate, effects) = self.lookup_with(key, model, scheduled, ModuleEstimate::clone);
        (estimate, effects.was_hit)
    }

    /// Locks the key's shard and inserts, updating the global counters.
    /// `hits` seeds the entry's hit count (nonzero when merging warmth).
    fn apply_insert(&self, key: ScheduleKey, estimate: ModuleEstimate, hits: u64) -> InsertOutcome {
        let index = self.shard_index(&key);
        let cap = self.shard_cap(index);
        let outcome = {
            let mut shard = self.shards[index].lock().expect("cache shard poisoned");
            shard.insert_entry(key, estimate, hits, cap)
        };
        if outcome.inserted {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        if outcome.evicted_hits.is_some() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Inserts an already-computed estimate (misses of `lookup_with` and
    /// migration from a local cache). An existing key keeps its incumbent.
    fn insert(&self, key: ScheduleKey, estimate: ModuleEstimate) {
        self.apply_insert(key, estimate, 0);
    }

    /// Merges one foreign entry: an incumbent keeps its estimate and gains
    /// the foreign hit count (warmth reconciled); a new key is inserted
    /// with the foreign hit count, evicting if needed. Returns whether a
    /// new entry was created.
    fn merge_entry(&self, key: ScheduleKey, estimate: ModuleEstimate, hits: u64) -> bool {
        let index = self.shard_index(&key);
        {
            let mut shard = self.shards[index].lock().expect("cache shard poisoned");
            if let Some(entry) = shard.map.get_mut(&key) {
                entry.hits += hits;
                return false;
            }
        }
        self.apply_insert(key, estimate, hits).inserted
    }

    /// Merges every entry of `other` into this table (replica warmth
    /// exchange). Conflict rule: the incumbent estimate wins and hit counts
    /// are summed; new keys are inserted (evicting per policy when full) in
    /// key order, so the merged table is deterministic regardless of
    /// hash-map iteration order. A handle to the same table is a no-op.
    /// Returns the number of newly created entries.
    pub fn absorb(&self, other: &SharedEvalCache) -> u64 {
        if self.same_table(other) {
            return 0;
        }
        let mut created = 0;
        for shard in other.shards.iter() {
            let mut entries: Vec<(ScheduleKey, ModuleEstimate, u64)> = {
                let shard = shard.lock().expect("cache shard poisoned");
                shard
                    .map
                    .iter()
                    .map(|(k, e)| (*k, e.estimate.clone(), e.hits))
                    .collect()
            };
            entries.sort_by_key(|(k, _, _)| (k.module, k.schedule));
            for (key, estimate, hits) in entries {
                created += u64::from(self.merge_entry(key, estimate, hits));
            }
        }
        created
    }

    /// Global lookups served from the table, across every handle.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Global lookups that ran the estimator, across every handle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries ever inserted, across every shard and handle.
    pub fn insertions(&self) -> u64 {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries ever evicted (one at a time, by the segmented policy),
    /// across every shard and handle. [`SharedEvalCache::clear`] does not
    /// count as eviction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Probation→protected promotions, across every shard and handle.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Global fraction of lookups served from the table.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of memoized estimates across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard occupancy and counters, in shard-index order.
    pub fn shard_stats(&self) -> Vec<CacheShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let shard = shard.lock().expect("cache shard poisoned");
                CacheShardStats {
                    len: shard.map.len(),
                    capacity: self.shard_cap(index),
                    protected: shard.protected,
                    insertions: shard.insertions,
                    evictions: shard.evictions,
                    promotions: shard.promotions,
                }
            })
            .collect()
    }

    /// Drops all memoized estimates (counters are kept; this is the one
    /// remaining wholesale wipe, and it is explicit).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut shard = shard.lock().expect("cache shard poisoned");
            shard.map.clear();
            shard.protected = 0;
        }
    }

    /// True if `other` is a handle to the same table.
    pub fn same_table(&self, other: &SharedEvalCache) -> bool {
        Arc::ptr_eq(&self.shards, &other.shards)
    }

    /// Serializes the table to the versioned snapshot byte format (see the
    /// module docs). Entries are emitted in shard order, sorted by key
    /// within each shard, so equal tables produce equal bytes.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut entries: Vec<(ScheduleKey, ModuleEstimate, u64, Segment)> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("cache shard poisoned");
            let mut batch: Vec<_> = shard
                .map
                .iter()
                .map(|(k, e)| (*k, e.estimate.clone(), e.hits, e.segment))
                .collect();
            batch.sort_by_key(|(k, _, _, _)| (k.module, k.schedule));
            entries.extend(batch);
        }
        let mut out = Vec::with_capacity(64 + entries.len() * 64);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (key, estimate, hits, segment) in &entries {
            out.extend_from_slice(&key.module.to_le_bytes());
            out.extend_from_slice(&key.schedule.to_le_bytes());
            out.extend_from_slice(&hits.to_le_bytes());
            out.push(matches!(segment, Segment::Protected) as u8);
            out.extend_from_slice(&estimate.total_s.to_bits().to_le_bytes());
            out.extend_from_slice(&(estimate.per_op.len() as u64).to_le_bytes());
            for (op, t) in &estimate.per_op {
                out.extend_from_slice(&(op.0 as u64).to_le_bytes());
                for part in [t.compute_s, t.memory_s, t.overhead_s, t.total_s] {
                    out.extend_from_slice(&part.to_bits().to_le_bytes());
                }
            }
        }
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Writes a snapshot of the table to `path` (atomic enough for a
    /// single writer: the whole byte image is built first, then written in
    /// one call). Returns the number of entries written.
    pub fn snapshot_to(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        let bytes = self.to_snapshot_bytes();
        // Entry count sits right after magic + version.
        let count = u64::from_le_bytes(bytes[8..16].try_into().expect("fixed header"));
        std::fs::write(path, &bytes)?;
        Ok(count)
    }

    /// Merges a snapshot produced by [`SharedEvalCache::to_snapshot_bytes`]
    /// into this table. The whole image is validated (magic, version,
    /// structure, checksum) *before* any entry is applied: a corrupt
    /// snapshot returns an error and leaves the table untouched. Restored
    /// entries enter probation with their saved hit counts (one hit
    /// re-promotes); conflicts follow the [`SharedEvalCache::absorb`] rule.
    /// Returns the number of newly created entries.
    pub fn restore_from_bytes(&self, bytes: &[u8]) -> Result<u64, SnapshotError> {
        let entries = parse_snapshot(bytes)?;
        let mut created = 0;
        for (key, estimate, hits) in entries {
            created += u64::from(self.merge_entry(key, estimate, hits));
        }
        Ok(created)
    }

    /// Reads and merges a snapshot file; see
    /// [`SharedEvalCache::restore_from_bytes`]. A missing or unreadable
    /// file is an [`SnapshotError::Io`]; either way the table is untouched
    /// and the caller can cold-start.
    pub fn restore_from(&self, path: impl AsRef<Path>) -> Result<u64, SnapshotError> {
        let bytes = std::fs::read(path)?;
        self.restore_from_bytes(&bytes)
    }
}

/// FNV-1a over `bytes`: the snapshot checksum. Deterministic, dependency
/// free, and plenty to catch truncation and bit rot (this guards against
/// accidents, not adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Bounds-checked little-endian reader over a snapshot image.
struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapshotError::Corrupt("length overflow"))?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Corrupt(what));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8-byte slice"),
        ))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }
}

/// Fully validates a snapshot image and decodes its entries. Pure: touches
/// no cache state, so callers can reject corrupt images before mutating.
#[allow(clippy::type_complexity)]
fn parse_snapshot(bytes: &[u8]) -> Result<Vec<(ScheduleKey, ModuleEstimate, u64)>, SnapshotError> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 4 + 8 + 8 {
        return Err(SnapshotError::Corrupt("image shorter than header"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let checksum = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    if fnv1a(body) != checksum {
        return Err(SnapshotError::Corrupt("checksum mismatch"));
    }
    let mut reader = SnapshotReader {
        bytes: body,
        pos: 0,
    };
    if reader.take(4, "magic")? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::Corrupt("bad magic"));
    }
    let version = u32::from_le_bytes(reader.take(4, "version")?.try_into().expect("4-byte slice"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Corrupt("unknown format version"));
    }
    let count = reader.u64("entry count")?;
    let mut entries = Vec::new();
    for _ in 0..count {
        let key = ScheduleKey {
            module: reader.u64("key module")?,
            schedule: reader.u64("key schedule")?,
        };
        let hits = reader.u64("entry hits")?;
        let segment = reader.u8("entry segment")?;
        if segment > 1 {
            return Err(SnapshotError::Corrupt("unknown segment tag"));
        }
        let total_s = reader.f64("entry total")?;
        let per_op_len = reader.u64("per-op count")?;
        // 40 bytes per op record: reject counts the body cannot hold
        // before allocating.
        if per_op_len > (body.len() as u64) / 40 {
            return Err(SnapshotError::Corrupt("per-op count exceeds image"));
        }
        let mut per_op = Vec::with_capacity(per_op_len as usize);
        for _ in 0..per_op_len {
            let op = OpId(reader.u64("op id")? as usize);
            let t = TimeEstimate {
                compute_s: reader.f64("op compute")?,
                memory_s: reader.f64("op memory")?,
                overhead_s: reader.f64("op overhead")?,
                total_s: reader.f64("op total")?,
            };
            per_op.push((op, t));
        }
        entries.push((key, ModuleEstimate { per_op, total_s }, hits));
    }
    if reader.pos != body.len() {
        return Err(SnapshotError::Corrupt("trailing bytes after entries"));
    }
    Ok(entries)
}

/// A memoization table for [`ModuleEstimate`]s with hit/miss accounting.
#[derive(Debug, Clone)]
pub struct EvalCache {
    /// Frozen snapshot shared (by `Arc`) between clones (local backend).
    shared: Arc<HashMap<ScheduleKey, ModuleEstimate>>,
    /// New entries since the last [`EvalCache::consolidate`] (local backend).
    local: HashMap<ScheduleKey, ModuleEstimate>,
    /// When set, every lookup goes through this thread-shared table instead
    /// of the local maps.
    backend: Option<SharedEvalCache>,
    capacity: usize,
    hits: u64,
    misses: u64,
    /// Trace probe carried by this handle: every lookup classification
    /// (hit/miss), shared-backend budget charge, eviction and promotion is
    /// mirrored as a trace event. Disabled (no-op) by default; cloning
    /// shares the sink, so an environment clone handed to a racing search
    /// thread keeps emitting into the same trace.
    probe: ProbeRef,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new(DEFAULT_EVAL_CACHE_CAPACITY)
    }
}

impl EvalCache {
    /// Creates a cache holding at most `capacity` estimates. The local
    /// backend bounds the snapshot-plus-overlay pair: when a new key would
    /// exceed the bound, the overlay generation-resets (or, if the frozen
    /// snapshot alone exhausts the capacity, the snapshot is shed and the
    /// overlay keeps memoizing) — memoization never silently stops. The
    /// shared backend evicts entry-wise; see [`SharedEvalCache`].
    pub fn new(capacity: usize) -> Self {
        Self {
            shared: Arc::new(HashMap::new()),
            local: HashMap::new(),
            backend: None,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            probe: ProbeRef::none(),
        }
    }

    /// Attaches (or detaches, with [`ProbeRef::none`]) the trace probe this
    /// handle mirrors its lookups into. The probe rides along on clones.
    pub fn set_probe(&mut self, probe: ProbeRef) {
        self.probe = probe;
    }

    /// The trace probe carried by this handle.
    pub fn probe(&self) -> &ProbeRef {
        &self.probe
    }

    /// A cache whose lookups go through an existing thread-shared table —
    /// how a *freshly constructed* environment joins a table other
    /// environments already share (e.g. a service worker building a
    /// per-request environment override while keeping the service's one
    /// persistent cache). Equivalent to cloning an environment that was put
    /// in shared mode, but usable when the configurations differ.
    pub fn with_shared_backend(backend: SharedEvalCache) -> Self {
        let mut cache = Self::new(DEFAULT_EVAL_CACHE_CAPACITY);
        cache.backend = Some(backend);
        cache
    }

    /// Converts this cache to the thread-shared sharded backend, migrating
    /// every memoized entry (in key order, so shard placement and any
    /// overflow eviction are deterministic), and returns a handle to the
    /// shared table. Idempotent: a cache already in shared mode just
    /// returns its handle. Clones taken *after* the conversion share the
    /// table.
    pub fn make_shared(&mut self) -> SharedEvalCache {
        if let Some(backend) = &self.backend {
            return backend.clone();
        }
        let backend = SharedEvalCache::new(self.capacity);
        let mut entries: Vec<(ScheduleKey, ModuleEstimate)> = self
            .shared
            .iter()
            .map(|(k, e)| (*k, e.clone()))
            .chain(self.local.drain())
            .collect();
        entries.sort_by_key(|(k, _)| (k.module, k.schedule));
        for (key, estimate) in entries {
            backend.insert(key, estimate);
        }
        self.shared = Arc::new(HashMap::new());
        self.backend = Some(backend.clone());
        backend
    }

    /// True when lookups go through a thread-shared table.
    pub fn is_shared(&self) -> bool {
        self.backend.is_some()
    }

    /// The shared backend handle, when in shared mode.
    pub fn shared_backend(&self) -> Option<&SharedEvalCache> {
        self.backend.as_ref()
    }

    /// Looks up the estimate for `scheduled`, running `model` only on a
    /// cache miss.
    pub fn estimate(&mut self, model: &CostModel, scheduled: &ScheduledModule) -> ModuleEstimate {
        self.estimate_keyed(schedule_key(scheduled), model, scheduled)
            .0
    }

    /// Like [`EvalCache::estimate`], but with a precomputed key (the
    /// environment caches the module fingerprint once per episode), and
    /// also reporting whether the lookup was a hit (`true`) or ran the
    /// estimator (`false`).
    pub fn estimate_keyed(
        &mut self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (ModuleEstimate, bool) {
        if let Some(backend) = &self.backend {
            let (estimate, effects) = backend.lookup_with(key, model, scheduled, Clone::clone);
            self.count(effects.was_hit);
            self.emit_lookup(effects);
            return (estimate, effects.was_hit);
        }
        let (estimate, was_hit) = self.local_lookup(key, model, scheduled);
        let estimate = estimate.clone();
        self.emit_lookup(LookupEffects {
            was_hit,
            ..LookupEffects::default()
        });
        (estimate, was_hit)
    }

    /// Cheapest lookup: only the total time, no estimate clone. Returns
    /// `(total_s, was_hit)`.
    pub fn total_s_keyed(
        &mut self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (f64, bool) {
        if let Some(backend) = &self.backend {
            let (total_s, effects) = backend.lookup_with(key, model, scheduled, |e| e.total_s);
            self.count(effects.was_hit);
            self.emit_lookup(effects);
            return (total_s, effects.was_hit);
        }
        let (estimate, was_hit) = self.local_lookup(key, model, scheduled);
        let total_s = estimate.total_s;
        self.emit_lookup(LookupEffects {
            was_hit,
            ..LookupEffects::default()
        });
        (total_s, was_hit)
    }

    /// Mirrors one lookup into the trace: the hit/miss classification, a
    /// shared-backend budget charge on miss, and any promotion or eviction
    /// the lookup performed. Purely observational: emission never touches
    /// the lookup result, so traced and untraced runs stay bit-identical.
    fn emit_lookup(&self, effects: LookupEffects) {
        if !self.probe.is_enabled() {
            return;
        }
        if effects.was_hit {
            self.probe.emit(EventKind::CacheHit, None, [0, 0, 0]);
            if effects.promoted {
                self.probe
                    .emit(EventKind::CachePromote, None, [effects.shard, 0, 0]);
            }
        } else {
            self.probe.emit(EventKind::CacheMiss, None, [0, 0, 0]);
            if let Some(backend) = &self.backend {
                let budget = backend.budget();
                self.probe
                    .emit(EventKind::BudgetCharge, None, [1, budget.spent(), 0]);
            }
            if let Some(victim_hits) = effects.evicted_hits {
                self.probe
                    .emit(EventKind::CacheEvict, None, [effects.shard, victim_hits, 0]);
            }
        }
    }

    fn count(&mut self, was_hit: bool) {
        if was_hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    fn local_lookup(
        &mut self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (&ModuleEstimate, bool) {
        use std::collections::hash_map::Entry;
        if self.shared.contains_key(&key) {
            self.hits += 1;
            return (self.shared.get(&key).expect("checked above"), true);
        }
        // Bound snapshot + overlay against the capacity, counting only a
        // genuinely new key. When the frozen snapshot alone exhausts the
        // capacity, shed the snapshot and keep memoizing through the
        // overlay — resetting the overlay in that state would wipe it on
        // *every* new key and silently stop memoization.
        if !self.local.contains_key(&key) && self.local.len() + self.shared.len() >= self.capacity {
            if self.shared.len() >= self.capacity {
                self.shared = Arc::new(HashMap::new());
            } else {
                self.local.clear();
            }
        }
        match self.local.entry(key) {
            Entry::Occupied(entry) => {
                self.hits += 1;
                (entry.into_mut(), true)
            }
            Entry::Vacant(entry) => {
                self.misses += 1;
                (entry.insert(model.estimate_scheduled(scheduled)), false)
            }
        }
    }

    /// Folds the local overlay into the shared snapshot, so clones share one
    /// snapshot and carry an empty overlay. No-op in shared mode (there is
    /// nothing local to fold).
    pub fn consolidate(&mut self) {
        if self.local.is_empty() {
            return;
        }
        let shared = Arc::make_mut(&mut self.shared);
        for (key, estimate) in self.local.drain() {
            shared.entry(key).or_insert(estimate);
        }
    }

    /// Number of lookups served from the cache *through this handle*.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that ran the estimator *through this handle*.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of memoized estimates (of the shared table when in shared
    /// mode).
    pub fn len(&self) -> usize {
        match &self.backend {
            Some(backend) => backend.len(),
            None => self.shared.len() + self.local.len(),
        }
    }

    /// True if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all memoized estimates (counters are kept).
    pub fn clear(&mut self) {
        self.local.clear();
        self.shared = Arc::new(HashMap::new());
        if let Some(backend) = &self.backend {
            backend.clear();
        }
    }

    /// Merges another cache's entries into this one (worker caches are
    /// folded back into the trainer's master cache after a parallel rollout
    /// batch). When both caches are handles onto the same shared table this
    /// is a no-op; otherwise the other cache's entries are walked into this
    /// one. Counters are not merged: hit/miss accounting stays with the
    /// cache that observed the lookups.
    pub fn absorb(&mut self, other: EvalCache) {
        if let (Some(a), Some(b)) = (&self.backend, &other.backend) {
            if a.same_table(b) {
                return;
            }
        }
        if let Some(backend) = &self.backend {
            // Shared receiver: push the other cache's entries in, sorted by
            // key so shard placement and overflow eviction stay
            // deterministic.
            let mut entries: Vec<(ScheduleKey, ModuleEstimate)> = other
                .shared
                .iter()
                .map(|(k, e)| (*k, e.clone()))
                .chain(other.local)
                .collect();
            entries.sort_by_key(|(k, _)| (k.module, k.schedule));
            for (key, estimate) in entries {
                backend.insert(key, estimate);
            }
            return;
        }
        if !Arc::ptr_eq(&self.shared, &other.shared) {
            for (key, estimate) in other.shared.iter() {
                if self.len() >= self.capacity {
                    break;
                }
                if !self.shared.contains_key(key) {
                    self.local.entry(*key).or_insert_with(|| estimate.clone());
                }
            }
        }
        for (key, estimate) in other.local {
            if self.len() >= self.capacity {
                break;
            }
            if !self.shared.contains_key(&key) {
                self.local.entry(key).or_insert(estimate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use mlir_rl_ir::{ModuleBuilder, OpId};
    use mlir_rl_transforms::Transformation;

    fn matmul(m: u64, n: u64, k: u64) -> Module {
        let mut b = ModuleBuilder::new("cache_test");
        let a = b.argument("A", vec![m, k]);
        let w = b.argument("B", vec![k, n]);
        b.matmul(a, w);
        b.finish()
    }

    /// An estimate with a chosen cost, for driving the merge rules through
    /// the private API without a real module.
    fn synthetic_estimate(total_s: f64) -> ModuleEstimate {
        ModuleEstimate {
            per_op: vec![(
                OpId(0),
                TimeEstimate {
                    compute_s: total_s,
                    memory_s: 0.0,
                    overhead_s: 0.0,
                    total_s,
                },
            )],
            total_s,
        }
    }

    #[test]
    fn cached_result_matches_direct_evaluation() {
        let cm = CostModel::new(MachineModel::default());
        let mut cache = EvalCache::default();
        let mut sm = ScheduledModule::new(matmul(64, 64, 64));
        sm.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![8, 8, 0],
            },
        )
        .unwrap();
        let direct = cm.estimate_scheduled(&sm);
        let cached = cache.estimate(&cm, &sm);
        assert_eq!(direct, cached);
        assert_eq!(cache.misses(), 1);
        // Second lookup is a hit and returns the identical estimate; the
        // hit survives consolidation into the shared snapshot.
        let again = cache.estimate(&cm, &sm);
        assert_eq!(direct, again);
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        cache.consolidate();
        assert_eq!(direct, cache.estimate(&cm, &sm));
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn different_schedules_get_different_keys() {
        let base = ScheduledModule::new(matmul(64, 64, 64));
        let mut tiled = base.clone();
        tiled
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![8, 8, 0],
                },
            )
            .unwrap();
        assert_ne!(schedule_key(&base), schedule_key(&tiled));
        // Same module fingerprint, different schedule fingerprint.
        assert_eq!(schedule_key(&base).module, schedule_key(&tiled).module);
    }

    #[test]
    fn different_modules_get_different_keys() {
        let a = ScheduledModule::new(matmul(64, 64, 64));
        let b = ScheduledModule::new(matmul(128, 64, 64));
        assert_ne!(schedule_key(&a).module, schedule_key(&b).module);
    }

    #[test]
    fn same_name_different_body_gets_different_keys() {
        // Two modules with identical names, shapes and iterator types but
        // different op kinds/arithmetic must not share a fingerprint.
        let mut b1 = ModuleBuilder::new("twin");
        let x1 = b1.argument("x", vec![64, 64]);
        let y1 = b1.argument("y", vec![64, 64]);
        b1.add(x1, y1);
        let mut b2 = ModuleBuilder::new("twin");
        let x2 = b2.argument("x", vec![64, 64]);
        let _y2 = b2.argument("y", vec![64, 64]);
        b2.sigmoid(x2);
        assert_ne!(
            module_fingerprint(&b1.finish()),
            module_fingerprint(&b2.finish())
        );
    }

    #[test]
    fn capacity_overflow_resets_the_table() {
        let cm = CostModel::new(MachineModel::default());
        let mut cache = EvalCache::new(2);
        for size in [32u64, 48, 64] {
            let sm = ScheduledModule::new(matmul(size, size, size));
            cache.estimate(&cm, &sm);
        }
        assert!(cache.len() <= 2, "capacity must bound the table");
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn consolidated_full_cache_still_memoizes() {
        // Regression: when the frozen snapshot alone reaches capacity,
        // every new-key insert used to wipe the (empty) overlay and drop
        // the new entry's chance of memoization entirely. The snapshot is
        // shed instead and the overlay keeps serving hits.
        let cm = CostModel::new(MachineModel::default());
        let mut cache = EvalCache::new(2);
        for size in [32u64, 48] {
            let sm = ScheduledModule::new(matmul(size, size, size));
            cache.estimate(&cm, &sm);
        }
        cache.consolidate();
        assert_eq!(cache.len(), 2, "snapshot holds the full capacity");

        let fresh = ScheduledModule::new(matmul(96, 96, 96));
        cache.estimate(&cm, &fresh); // sheds the snapshot, lands in overlay
        let misses_before = cache.misses();
        let (_, was_hit) = cache.estimate_keyed(schedule_key(&fresh), &cm, &fresh);
        assert!(was_hit, "a consolidated-full cache must keep memoizing");
        assert_eq!(cache.misses(), misses_before);
        assert!(cache.len() <= 2, "the bound still holds after the shed");
    }

    #[test]
    fn absorb_merges_entries_without_touching_counters() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        let mut b = EvalCache::default();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        b.estimate(&cm, &sm);
        a.absorb(b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.misses(), 0);
        // The absorbed entry now serves hits.
        a.estimate(&cm, &sm);
        assert_eq!(a.hits(), 1);
    }

    #[test]
    fn absorb_merges_a_foreign_snapshot_too() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        let mut b = EvalCache::default();
        let sm = ScheduledModule::new(matmul(48, 48, 48));
        b.estimate(&cm, &sm);
        b.consolidate();
        a.absorb(b);
        assert_eq!(a.len(), 1);
        a.estimate(&cm, &sm);
        assert_eq!(a.hits(), 1);
    }

    #[test]
    fn clones_share_the_snapshot_cheaply() {
        let cm = CostModel::new(MachineModel::default());
        let mut master = EvalCache::default();
        for size in [32u64, 48, 64] {
            let sm = ScheduledModule::new(matmul(size, size, size));
            master.estimate(&cm, &sm);
        }
        master.consolidate();
        let mut worker = master.clone();
        // Worker hits come from the shared snapshot; new entries land in
        // the worker's (initially empty) overlay only.
        let sm = ScheduledModule::new(matmul(32, 32, 32));
        worker.estimate(&cm, &sm);
        assert_eq!(worker.hits(), master.hits() + 1);
        let fresh = ScheduledModule::new(matmul(96, 96, 96));
        worker.estimate(&cm, &fresh);
        assert_eq!(worker.len(), 4);
        assert_eq!(master.len(), 3);
        // Folding the worker back transfers only the new entry.
        master.absorb(worker);
        assert_eq!(master.len(), 4);
    }

    #[test]
    fn make_shared_migrates_entries_and_shares_between_clones() {
        let cm = CostModel::new(MachineModel::default());
        let mut master = EvalCache::default();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        master.estimate(&cm, &sm);
        master.consolidate();
        let overlay = ScheduledModule::new(matmul(48, 48, 48));
        master.estimate(&cm, &overlay);
        let handle = master.make_shared();
        assert!(master.is_shared());
        assert_eq!(master.len(), 2, "snapshot and overlay entries migrate");

        // A clone taken after the conversion is a handle to the same table:
        // entries inserted through one handle serve hits through the other.
        let mut worker = master.clone();
        let fresh = ScheduledModule::new(matmul(96, 96, 96));
        let misses_before = worker.misses();
        worker.estimate(&cm, &fresh);
        assert_eq!(worker.misses(), misses_before + 1, "fresh key is a miss");
        let (_, was_hit) = master.estimate_keyed(schedule_key(&fresh), &cm, &fresh);
        assert!(was_hit, "the worker's insert is visible to the master");
        assert_eq!(handle.len(), 3);

        // Migrated entries serve hits too, and shared values match direct
        // evaluation.
        let (est, was_hit) = master.estimate_keyed(schedule_key(&sm), &cm, &sm);
        assert!(was_hit);
        assert_eq!(est, cm.estimate_scheduled(&sm));

        // make_shared is idempotent.
        assert!(master.make_shared().same_table(&handle));
    }

    #[test]
    fn shared_global_counters_aggregate_across_handles() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        let handle = a.make_shared();
        let mut b = a.clone();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        a.estimate(&cm, &sm); // global miss
        b.estimate(&cm, &sm); // global hit
        assert_eq!(handle.misses(), 1);
        assert_eq!(handle.hits(), 1);
        assert!((handle.hit_rate() - 0.5).abs() < 1e-12);
        // Per-handle counters stay local.
        assert_eq!((a.hits(), a.misses()), (0, 1));
        assert_eq!((b.hits(), b.misses()), (1, 0));
    }

    #[test]
    fn absorb_between_same_table_handles_is_a_noop() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        a.make_shared();
        let mut b = a.clone();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        b.estimate(&cm, &sm);
        a.absorb(b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn absorb_local_into_shared_migrates_entries() {
        let cm = CostModel::new(MachineModel::default());
        let mut shared = EvalCache::default();
        shared.make_shared();
        let mut local = EvalCache::default();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        local.estimate(&cm, &sm);
        shared.absorb(local);
        assert_eq!(shared.len(), 1);
        let (_, was_hit) = shared.estimate_keyed(schedule_key(&sm), &cm, &sm);
        assert!(was_hit);
    }

    #[test]
    fn shared_cache_is_consistent_under_concurrent_lookups() {
        let cm = CostModel::new(MachineModel::default());
        let handle = SharedEvalCache::new(1 << 12);
        let sizes: Vec<u64> = (1..24).map(|i| 16 * i).collect();
        let expected: Vec<f64> = sizes
            .iter()
            .map(|s| {
                cm.estimate_scheduled(&ScheduledModule::new(matmul(*s, *s, *s)))
                    .total_s
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = handle.clone();
                let cm = cm.clone();
                let sizes = sizes.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    for (size, want) in sizes.iter().zip(&expected) {
                        let sm = ScheduledModule::new(matmul(*size, *size, *size));
                        let (got, _) = handle.total_s_keyed(schedule_key(&sm), &cm, &sm);
                        assert_eq!(got, *want, "shared value must match direct evaluation");
                    }
                });
            }
        });
        assert_eq!(handle.len(), sizes.len());
        assert_eq!(handle.hits() + handle.misses(), 4 * sizes.len() as u64);
    }

    #[test]
    fn shared_cache_misses_charge_the_attached_budget() {
        let cm = CostModel::new(MachineModel::default());
        let ledger = EvalBudget::limited(2);
        let handle = SharedEvalCache::new(1 << 12).with_budget(ledger.clone());
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        handle.total_s_keyed(schedule_key(&sm), &cm, &sm); // miss: 1 unit
        handle.total_s_keyed(schedule_key(&sm), &cm, &sm); // hit: free
        assert_eq!(ledger.spent(), 1);
        assert!(!ledger.is_exhausted());
        let sm2 = ScheduledModule::new(matmul(32, 32, 32));
        // Clones share the ledger along with the table.
        let clone = handle.clone();
        clone.total_s_keyed(schedule_key(&sm2), &cm, &sm2); // miss: 1 unit
        assert!(ledger.is_exhausted());
        assert!(handle.budget().same_ledger(&ledger));
        assert_eq!(ledger.spent(), handle.misses());
    }

    #[test]
    fn racing_same_key_misses_keep_accounting_exact() {
        // Satellite contract: every estimator run is a miss and charges the
        // ledger, even when its insert loses the race — so hits + misses
        // equals total lookups and budget spend equals misses, exactly.
        let cm = CostModel::new(MachineModel::default());
        let ledger = EvalBudget::unlimited();
        let handle = SharedEvalCache::new(1 << 8).with_budget(ledger.clone());
        let threads = 8;
        let rounds = 4u64;
        let barrier = std::sync::Barrier::new(threads);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let handle = handle.clone();
                let cm = cm.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    for round in 0..rounds {
                        let size = 16 * (round + 1);
                        let sm = ScheduledModule::new(matmul(size, size, size));
                        let key = schedule_key(&sm);
                        barrier.wait(); // all threads race on the same new key
                        handle.total_s_keyed(key, &cm, &sm);
                    }
                });
            }
        });
        let total = threads as u64 * rounds;
        assert_eq!(handle.hits() + handle.misses(), total);
        assert_eq!(ledger.spent(), handle.misses());
        assert!(handle.misses() >= rounds, "each round misses at least once");
        // Lost insert races must not inflate the insertion counter past
        // one per distinct key.
        assert_eq!(handle.insertions(), rounds);
        assert_eq!(handle.len(), rounds as usize);
    }

    #[test]
    fn tiny_capacity_bound_holds_under_churn() {
        // capacity < SHARED_CACHE_SHARDS used to inflate the bound to one
        // entry *per shard* (16x); the bound is global now.
        let cm = CostModel::new(MachineModel::default());
        for capacity in [1usize, 2, 5, 7] {
            let handle = SharedEvalCache::new(capacity);
            for i in 1..60u64 {
                let sm = ScheduledModule::new(matmul(8 * i, 8 * i, 8 * i));
                handle.total_s_keyed(schedule_key(&sm), &cm, &sm);
                assert!(
                    handle.len() <= capacity,
                    "len {} exceeds capacity {capacity}",
                    handle.len()
                );
            }
            assert!(!handle.is_empty());
            assert!(handle.evictions() > 0, "churn must evict entry-wise");
            assert_eq!(
                handle.insertions() - handle.evictions(),
                handle.len() as u64,
                "inserts minus evictions must equal occupancy"
            );
        }
        assert_eq!(
            SharedEvalCache::try_new(0).map(|_| ()),
            Err(String::from("shared cache capacity must be at least 1"))
        );
        assert!(SharedEvalCache::try_new(1).is_ok());
    }

    #[test]
    fn shard_overflow_evicts_entry_wise_not_wholesale() {
        let cm = CostModel::new(MachineModel::default());
        let handle = SharedEvalCache::new(SHARED_CACHE_SHARDS);
        for i in 1..40u64 {
            let sm = ScheduledModule::new(matmul(8 * i, 8 * i, 8 * i));
            handle.total_s_keyed(schedule_key(&sm), &cm, &sm);
            // Entry-wise eviction keeps every shard that ever held an entry
            // non-empty: an insert into a full shard replaces, never wipes.
            assert!(handle.len() <= SHARED_CACHE_SHARDS);
        }
        assert!(!handle.is_empty());
        let stats = handle.shard_stats();
        assert_eq!(stats.len(), SHARED_CACHE_SHARDS);
        for stat in &stats {
            assert!(stat.len <= stat.capacity);
            // A shard that ever received an insert still holds an entry:
            // the old wholesale reset would leave len == 0 after overflow.
            if stat.insertions > 0 {
                assert_eq!(stat.len, stat.capacity, "no shard is left wiped");
            }
        }
        let (ins, ev, pr) = stats.iter().fold((0, 0, 0), |(i, e, p), s| {
            (i + s.insertions, e + s.evictions, p + s.promotions)
        });
        assert_eq!(ins, handle.insertions());
        assert_eq!(ev, handle.evictions());
        assert_eq!(pr, handle.promotions());
    }

    #[test]
    fn eviction_is_cost_aware_and_protects_hit_entries() {
        let cm = CostModel::new(MachineModel::default());
        // Keys constructed to collide on shard 0, which has room for 4.
        let cache = SharedEvalCache::new(SHARED_CACHE_SHARDS * 4);
        let shards = cache.shards.len();
        let keys: Vec<ScheduleKey> = (0..8)
            .map(|i| ScheduleKey {
                module: (i as u64) * shards as u64,
                schedule: 0,
            })
            .inspect(|k| assert_eq!(cache.shard_index(k), 0))
            .collect();
        let cap = cache.shard_cap(0);
        assert_eq!(cap, 4);
        let sm = ScheduledModule::new(matmul(64, 64, 64));

        // Fill shard 0: k0..k3, all probation with zero hits.
        for key in keys.iter().take(4) {
            cache.total_s_keyed(*key, &cm, &sm);
        }
        // Hit k0 and k1: promoted to protected, nonzero seconds-saved.
        cache.total_s_keyed(keys[0], &cm, &sm);
        cache.total_s_keyed(keys[1], &cm, &sm);
        assert_eq!(cache.promotions(), 2);

        // Insert k4 into the full shard: the victim must be the *oldest
        // cold probation* entry, k2 — not a protected one, and not the
        // whole shard.
        cache.total_s_keyed(keys[4], &cm, &sm);
        assert_eq!(cache.evictions(), 1);
        let (_, k0_hit) = cache.total_s_keyed(keys[0], &cm, &sm);
        let (_, k3_hit) = cache.total_s_keyed(keys[3], &cm, &sm);
        assert!(k0_hit, "protected entry survives");
        assert!(k3_hit, "younger probation entry survives");
        let (_, k2_hit) = cache.total_s_keyed(keys[2], &cm, &sm);
        assert!(!k2_hit, "the cold oldest probation entry was the victim");
    }

    #[test]
    fn protected_segment_is_bounded() {
        let cache = SharedEvalCache::new(SHARED_CACHE_SHARDS * 4);
        let cm = CostModel::new(MachineModel::default());
        let shards = cache.shards.len();
        let sm = ScheduledModule::new(matmul(32, 32, 32));
        let keys: Vec<ScheduleKey> = (0..4)
            .map(|i| ScheduleKey {
                module: (i as u64) * shards as u64,
                schedule: 0,
            })
            .collect();
        for key in &keys {
            cache.total_s_keyed(*key, &cm, &sm);
        }
        // Promote everything; the protected segment must stay within half
        // the shard (demotions keep the balance), not swallow the shard.
        for key in &keys {
            cache.total_s_keyed(*key, &cm, &sm);
            cache.total_s_keyed(*key, &cm, &sm);
        }
        let stats = cache.shard_stats();
        assert!(stats[0].protected <= cache.protected_cap(0));
        assert!(stats[0].protected >= 1);
        assert!(
            stats[0].promotions > stats[0].protected as u64,
            "over-cap promotions demoted"
        );
    }

    #[test]
    fn snapshot_roundtrip_restores_warmth_bit_identically() {
        let cm = CostModel::new(MachineModel::default());
        let source = SharedEvalCache::new(1 << 10);
        let schedules: Vec<ScheduledModule> = (1..12u64)
            .map(|i| ScheduledModule::new(matmul(16 * i, 16 * i, 16 * i)))
            .collect();
        for sm in &schedules {
            source.total_s_keyed(schedule_key(sm), &cm, sm);
        }
        // A few repeat hits so hit counts are nonzero in the image.
        source.total_s_keyed(schedule_key(&schedules[0]), &cm, &schedules[0]);

        let bytes = source.to_snapshot_bytes();
        let restored = SharedEvalCache::new(1 << 10);
        let created = restored.restore_from_bytes(&bytes).expect("valid image");
        assert_eq!(created, schedules.len() as u64);
        assert_eq!(restored.len(), source.len());

        // Every restored lookup is a hit with the bit-identical estimate.
        for sm in &schedules {
            let want = cm.estimate_scheduled(sm);
            let (got, was_hit) = restored.estimate_keyed(schedule_key(sm), &cm, sm);
            assert!(was_hit, "restored entries must serve hits");
            assert_eq!(got, want);
        }
        // Snapshotting equal tables yields equal bytes (determinism).
        assert_eq!(bytes[..], source.to_snapshot_bytes()[..]);

        // File roundtrip too.
        let path =
            std::env::temp_dir().join(format!("mlir-rl-cache-test-{}.snap", std::process::id()));
        source.snapshot_to(&path).expect("snapshot write");
        let from_file = SharedEvalCache::new(1 << 10);
        assert_eq!(
            from_file.restore_from(&path).expect("snapshot read"),
            schedules.len() as u64
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshots_are_rejected_without_mutation() {
        let cm = CostModel::new(MachineModel::default());
        let source = SharedEvalCache::new(64);
        for i in 1..6u64 {
            let sm = ScheduledModule::new(matmul(16 * i, 16 * i, 16 * i));
            source.total_s_keyed(schedule_key(&sm), &cm, &sm);
        }
        let good = source.to_snapshot_bytes();

        let target = SharedEvalCache::new(64);
        let reject = |bytes: &[u8]| {
            let err = target
                .restore_from_bytes(bytes)
                .expect_err("corrupt image must be rejected");
            assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
            assert!(target.is_empty(), "a rejected restore must not mutate");
        };

        reject(&[]); // empty
        reject(&good[..good.len() - 3]); // truncated
        let mut flipped = good.clone();
        flipped[20] ^= 0x40;
        reject(&flipped); // bit rot
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        reject(&bad_magic); // wrong magic (checksum also trips; both corrupt)
        let mut bad_version = good.clone();
        bad_version[4] = 0xEE;
        reject(&bad_version);
        // Missing file is an io error, also non-fatal.
        let missing = std::env::temp_dir().join("mlir-rl-no-such-snapshot.snap");
        assert!(matches!(
            target.restore_from(&missing),
            Err(SnapshotError::Io(_))
        ));
        assert!(target.is_empty());

        // The pristine image still restores fine afterwards.
        assert_eq!(target.restore_from_bytes(&good).expect("valid"), 5);
    }

    #[test]
    fn absorb_keeps_incumbent_and_reconciles_hits() {
        let key = ScheduleKey {
            module: 7,
            schedule: 9,
        };
        let a = SharedEvalCache::new(64);
        let b = SharedEvalCache::new(64);
        a.apply_insert(key, synthetic_estimate(1.0), 3);
        b.apply_insert(key, synthetic_estimate(2.0), 5);
        let other = ScheduleKey {
            module: 8,
            schedule: 1,
        };
        b.apply_insert(other, synthetic_estimate(4.0), 2);

        let created = a.absorb(&b);
        assert_eq!(created, 1, "only the non-conflicting key is new");
        assert_eq!(a.len(), 2);
        {
            let shard = a.shards[a.shard_index(&key)].lock().unwrap();
            let entry = &shard.map[&key];
            assert_eq!(entry.estimate.total_s, 1.0, "incumbent estimate wins");
            assert_eq!(entry.hits, 8, "hit counts are summed");
        }
        {
            let shard = a.shards[a.shard_index(&other)].lock().unwrap();
            assert_eq!(shard.map[&other].estimate.total_s, 4.0);
            assert_eq!(shard.map[&other].hits, 2, "foreign warmth carries over");
        }
        // Same-table absorb is a no-op.
        assert_eq!(a.absorb(&a.clone()), 0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn absorb_order_does_not_change_lookup_results() {
        let cm = CostModel::new(MachineModel::default());
        let schedules: Vec<ScheduledModule> = (1..10u64)
            .map(|i| ScheduledModule::new(matmul(16 * i, 16 * i, 16 * i)))
            .collect();
        let build = |range: std::ops::Range<usize>| {
            let cache = SharedEvalCache::new(6); // tighter than the key count
            for sm in &schedules[range] {
                cache.total_s_keyed(schedule_key(sm), &cm, sm);
            }
            cache
        };
        let ab = build(0..6);
        ab.absorb(&build(3..9));
        let ba = build(3..9);
        ba.absorb(&build(0..6));
        // Which entries survive may differ with capacity pressure, but
        // every lookup answer is bit-identical to direct evaluation in
        // both merge orders.
        for sm in &schedules {
            let want = cm.estimate_scheduled(sm).total_s;
            let (x, _) = ab.total_s_keyed(schedule_key(sm), &cm, sm);
            let (y, _) = ba.total_s_keyed(schedule_key(sm), &cm, sm);
            assert_eq!(x.to_bits(), want.to_bits());
            assert_eq!(y.to_bits(), want.to_bits());
        }
        assert!(ab.len() <= 6 && ba.len() <= 6);
    }

    #[test]
    fn evicted_then_recomputed_entries_stay_bit_identical() {
        let cm = CostModel::new(MachineModel::default());
        let tiny = SharedEvalCache::new(3);
        let roomy = SharedEvalCache::new(1 << 10);
        let schedules: Vec<ScheduledModule> = (1..20u64)
            .map(|i| ScheduledModule::new(matmul(8 * i, 8 * i, 8 * i)))
            .collect();
        // Two passes through the keys: the tiny cache churns hard, the
        // roomy one never evicts; every answer must agree bit for bit.
        for _ in 0..2 {
            for sm in &schedules {
                let key = schedule_key(sm);
                let (a, _) = tiny.total_s_keyed(key, &cm, sm);
                let (b, _) = roomy.total_s_keyed(key, &cm, sm);
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(tiny.evictions() > 0, "the tiny cache must have churned");
        assert_eq!(roomy.evictions(), 0);
    }

    #[test]
    fn probe_mirrors_evictions_and_promotions() {
        use mlir_rl_obs::TraceRecorder;
        let cm = CostModel::new(MachineModel::default());
        let recorder = TraceRecorder::new(1 << 10, 1);
        let mut cache = EvalCache::with_shared_backend(SharedEvalCache::new(2));
        cache.set_probe(recorder.probe(0));
        let schedules: Vec<ScheduledModule> = (1..6u64)
            .map(|i| ScheduledModule::new(matmul(16 * i, 16 * i, 16 * i)))
            .collect();
        // Pin one entry warm (miss, then a promoting hit), then churn the
        // 2-entry table with fresh keys so admissions must evict.
        cache.estimate(&cm, &schedules[0]);
        cache.estimate(&cm, &schedules[0]);
        for sm in &schedules[1..] {
            cache.estimate(&cm, sm);
        }
        let count = |kind: EventKind| {
            recorder
                .snapshot()
                .events
                .iter()
                .filter(|e| e.kind == kind)
                .count()
        };
        assert_eq!(count(EventKind::CacheHit), 1);
        assert_eq!(count(EventKind::CacheMiss), 5);
        assert_eq!(
            count(EventKind::BudgetCharge),
            5,
            "every miss charges the shared ledger"
        );
        assert_eq!(count(EventKind::CachePromote), 1, "the repeat hit promotes");
        assert!(
            count(EventKind::CacheEvict) >= 3,
            "churning a 2-entry table past capacity must emit evictions"
        );
    }
}
