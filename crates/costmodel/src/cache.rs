//! Schedule-keyed memoization of cost-model evaluations.
//!
//! Training evaluates the cost model millions of times, and early in
//! training (and throughout the immediate-reward mode of Fig. 7) the same
//! `(module, schedule)` pairs recur constantly: every episode starts from
//! the untransformed baseline, popular schedules are re-sampled across
//! trajectories, and PPO revisits the same modules round-robin. The
//! [`EvalCache`] memoizes [`ModuleEstimate`]s under a canonical hash of the
//! module and its per-operation schedules so repeated schedules never re-run
//! the roofline estimator.
//!
//! The cache has two backends:
//!
//! * **Local** (the default) — a two-level table: a frozen [`Arc`]-shared
//!   snapshot plus a small local overlay for new entries. Cloning copies the
//!   overlay but only bumps a reference count for the snapshot;
//!   [`EvalCache::absorb`]ing a clone back walks only its overlay.
//!   [`EvalCache::consolidate`] folds the overlay into the snapshot.
//! * **Shared** — a [`SharedEvalCache`]: one sharded hash table behind
//!   `Arc<Mutex<_>>` shards, so every clone *is* the same table. The rollout
//!   engine and the schedule-search driver put their environments in this
//!   mode ([`EvalCache::make_shared`]) so all workers and all branches of a
//!   search hit one cache — the parallel hit-rate matches serial collection
//!   instead of every worker re-discovering the same schedules. Estimator
//!   runs happen *outside* the shard locks (a lost race costs one duplicate
//!   evaluation, never a wrong value), and eviction resets one shard at a
//!   time.
//!
//! Per-[`EvalCache`] hit/miss counters always stay with the handle that
//! observed the lookups (episode accounting), while a [`SharedEvalCache`]
//! additionally keeps global atomic counters across every handle (batch
//! accounting for the search driver).
//!
//! Keys are 128 bits (module fingerprint + schedule fingerprint), computed
//! with [`std::collections::hash_map::DefaultHasher`], which is
//! deterministic for a fixed Rust release. A collision would silently serve
//! a wrong estimate; at 2^128 key space this is not a practical concern, and
//! the `cached_estimates_match_uncached` property test exercises the
//! construction.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mlir_rl_ir::Module;
use mlir_rl_obs::{EventKind, ProbeRef};
use mlir_rl_transforms::ScheduledModule;

use crate::budget::EvalBudget;
use crate::estimator::{CostModel, ModuleEstimate};

/// Default maximum number of memoized estimates per cache.
pub const DEFAULT_EVAL_CACHE_CAPACITY: usize = 1 << 16;

/// Number of independently locked shards of a [`SharedEvalCache`].
pub const SHARED_CACHE_SHARDS: usize = 16;

/// Canonical identity of a `(module, schedule)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// Fingerprint of the module structure (name, ops, loop bounds).
    pub module: u64,
    /// Fingerprint of the per-operation schedules.
    pub schedule: u64,
}

/// Fingerprints a module's identity: its name plus everything about each
/// operation the estimator reads — kind, iteration domain, iterator types,
/// indexing maps and arithmetic profile — so two structurally different
/// modules never share a key even if their names collide.
pub fn module_fingerprint(module: &Module) -> u64 {
    let mut h = DefaultHasher::new();
    module.name().hash(&mut h);
    for op in module.ops() {
        op.id.hash(&mut h);
        op.kind.hash(&mut h);
        op.loop_bounds.hash(&mut h);
        op.iterator_types.hash(&mut h);
        op.indexing_maps.hash(&mut h);
        op.arith.hash(&mut h);
    }
    h.finish()
}

/// Fingerprints the schedule state of a module: the ordered transformation
/// list of every operation (which fully determines tiling, interchange
/// order, parallelization, fusion and vectorization state).
pub fn schedule_fingerprint(scheduled: &ScheduledModule) -> u64 {
    let mut h = DefaultHasher::new();
    for state in scheduled.states() {
        state.schedule.hash(&mut h);
        state.fused_into.hash(&mut h);
    }
    h.finish()
}

/// The canonical cache key of a scheduled module.
pub fn schedule_key(scheduled: &ScheduledModule) -> ScheduleKey {
    ScheduleKey {
        module: module_fingerprint(scheduled.module()),
        schedule: schedule_fingerprint(scheduled),
    }
}

/// One sharded, thread-shared memoization table. Cloning shares the table
/// (and the global hit/miss counters) by reference; handles on any thread
/// see entries inserted by every other handle.
#[derive(Debug, Clone)]
pub struct SharedEvalCache {
    shards: Arc<Vec<Mutex<HashMap<ScheduleKey, ModuleEstimate>>>>,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    /// Every estimator run (miss) charges one unit to this ledger, so a
    /// roster of searchers sharing the table also shares one spend account.
    budget: EvalBudget,
    shard_capacity: usize,
}

impl SharedEvalCache {
    /// Creates a shared cache holding at most (approximately) `capacity`
    /// estimates across its shards. A shard that fills up is emptied
    /// wholesale, like the local backend's generation reset.
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: Arc::new(
                (0..SHARED_CACHE_SHARDS)
                    .map(|_| Mutex::new(HashMap::new()))
                    .collect(),
            ),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            budget: EvalBudget::unlimited(),
            shard_capacity: (capacity / SHARED_CACHE_SHARDS).max(1),
        }
    }

    /// Replaces the table's spend ledger (call before cloning handles: a
    /// clone shares whatever ledger its parent carried). Each estimator run
    /// charges one unit.
    pub fn with_budget(mut self, budget: EvalBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The spend ledger every miss of this table charges.
    pub fn budget(&self) -> &EvalBudget {
        &self.budget
    }

    fn shard(&self, key: &ScheduleKey) -> &Mutex<HashMap<ScheduleKey, ModuleEstimate>> {
        // The fingerprints are already well-mixed hashes; fold them down to
        // a shard index.
        let mix = key.module ^ key.schedule.rotate_left(17);
        &self.shards[(mix as usize) % SHARED_CACHE_SHARDS]
    }

    /// Looks up `key`, running `model` *outside* the shard lock on a miss,
    /// and returns `project`ed view of the estimate plus whether the lookup
    /// was a hit. Two threads racing on the same new key both run the
    /// estimator (same deterministic result); one insert wins.
    fn lookup_with<T>(
        &self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
        project: impl Fn(&ModuleEstimate) -> T,
    ) -> (T, bool) {
        {
            let shard = self.shard(&key).lock().expect("cache shard poisoned");
            if let Some(estimate) = shard.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (project(estimate), true);
            }
        }
        let estimate = model.estimate_scheduled(scheduled);
        let value = project(&estimate);
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.budget.charge(1);
        self.insert(key, estimate);
        (value, false)
    }

    /// Looks up the total time for `key`, running `model` only on a miss.
    /// Returns `(total_s, was_hit)`.
    pub fn total_s_keyed(
        &self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (f64, bool) {
        self.lookup_with(key, model, scheduled, |estimate| estimate.total_s)
    }

    /// Like [`SharedEvalCache::total_s_keyed`] but returning the whole
    /// estimate (cloned out of the table).
    pub fn estimate_keyed(
        &self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (ModuleEstimate, bool) {
        self.lookup_with(key, model, scheduled, ModuleEstimate::clone)
    }

    /// Inserts an already-computed estimate (misses of [`Self::lookup_with`]
    /// and migration from a local cache). A full shard is emptied wholesale
    /// before the insert, like the local backend's generation reset.
    fn insert(&self, key: ScheduleKey, estimate: ModuleEstimate) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if shard.len() >= self.shard_capacity && !shard.contains_key(&key) {
            shard.clear();
        }
        shard.entry(key).or_insert(estimate);
    }

    /// Global lookups served from the table, across every handle.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Global lookups that ran the estimator, across every handle.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Global fraction of lookups served from the table.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits(), self.misses());
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Number of memoized estimates across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all memoized estimates (counters are kept).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    /// True if `other` is a handle to the same table.
    pub fn same_table(&self, other: &SharedEvalCache) -> bool {
        Arc::ptr_eq(&self.shards, &other.shards)
    }
}

/// A memoization table for [`ModuleEstimate`]s with hit/miss accounting.
#[derive(Debug, Clone)]
pub struct EvalCache {
    /// Frozen snapshot shared (by `Arc`) between clones (local backend).
    shared: Arc<HashMap<ScheduleKey, ModuleEstimate>>,
    /// New entries since the last [`EvalCache::consolidate`] (local backend).
    local: HashMap<ScheduleKey, ModuleEstimate>,
    /// When set, every lookup goes through this thread-shared table instead
    /// of the local maps.
    backend: Option<SharedEvalCache>,
    capacity: usize,
    hits: u64,
    misses: u64,
    /// Trace probe carried by this handle: every lookup classification
    /// (hit/miss) and shared-backend budget charge is mirrored as a trace
    /// event. Disabled (no-op) by default; cloning shares the sink, so an
    /// environment clone handed to a racing search thread keeps emitting
    /// into the same trace.
    probe: ProbeRef,
}

impl Default for EvalCache {
    fn default() -> Self {
        Self::new(DEFAULT_EVAL_CACHE_CAPACITY)
    }
}

impl EvalCache {
    /// Creates a cache holding at most `capacity` estimates. When the cache
    /// fills up it is emptied wholesale (generation reset) rather than
    /// evicting entry by entry; the capacity is large enough that this is
    /// rare in training.
    pub fn new(capacity: usize) -> Self {
        Self {
            shared: Arc::new(HashMap::new()),
            local: HashMap::new(),
            backend: None,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            probe: ProbeRef::none(),
        }
    }

    /// Attaches (or detaches, with [`ProbeRef::none`]) the trace probe this
    /// handle mirrors its lookups into. The probe rides along on clones.
    pub fn set_probe(&mut self, probe: ProbeRef) {
        self.probe = probe;
    }

    /// The trace probe carried by this handle.
    pub fn probe(&self) -> &ProbeRef {
        &self.probe
    }

    /// A cache whose lookups go through an existing thread-shared table —
    /// how a *freshly constructed* environment joins a table other
    /// environments already share (e.g. a service worker building a
    /// per-request environment override while keeping the service's one
    /// persistent cache). Equivalent to cloning an environment that was put
    /// in shared mode, but usable when the configurations differ.
    pub fn with_shared_backend(backend: SharedEvalCache) -> Self {
        let mut cache = Self::new(DEFAULT_EVAL_CACHE_CAPACITY);
        cache.backend = Some(backend);
        cache
    }

    /// Converts this cache to the thread-shared sharded backend, migrating
    /// every memoized entry, and returns a handle to the shared table.
    /// Idempotent: a cache already in shared mode just returns its handle.
    /// Clones taken *after* the conversion share the table.
    pub fn make_shared(&mut self) -> SharedEvalCache {
        if let Some(backend) = &self.backend {
            return backend.clone();
        }
        let backend = SharedEvalCache::new(self.capacity);
        for (key, estimate) in self.shared.iter() {
            backend.insert(*key, estimate.clone());
        }
        for (key, estimate) in self.local.drain() {
            backend.insert(key, estimate);
        }
        self.shared = Arc::new(HashMap::new());
        self.backend = Some(backend.clone());
        backend
    }

    /// True when lookups go through a thread-shared table.
    pub fn is_shared(&self) -> bool {
        self.backend.is_some()
    }

    /// The shared backend handle, when in shared mode.
    pub fn shared_backend(&self) -> Option<&SharedEvalCache> {
        self.backend.as_ref()
    }

    /// Looks up the estimate for `scheduled`, running `model` only on a
    /// cache miss.
    pub fn estimate(&mut self, model: &CostModel, scheduled: &ScheduledModule) -> ModuleEstimate {
        self.estimate_keyed(schedule_key(scheduled), model, scheduled)
            .0
    }

    /// Like [`EvalCache::estimate`], but with a precomputed key (the
    /// environment caches the module fingerprint once per episode), and
    /// also reporting whether the lookup was a hit (`true`) or ran the
    /// estimator (`false`).
    pub fn estimate_keyed(
        &mut self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (ModuleEstimate, bool) {
        if let Some(backend) = &self.backend {
            let (estimate, was_hit) = backend.estimate_keyed(key, model, scheduled);
            self.count(was_hit);
            self.emit_lookup(was_hit);
            return (estimate, was_hit);
        }
        let (estimate, was_hit) = self.local_lookup(key, model, scheduled);
        let estimate = estimate.clone();
        self.emit_lookup(was_hit);
        (estimate, was_hit)
    }

    /// Cheapest lookup: only the total time, no estimate clone. Returns
    /// `(total_s, was_hit)`.
    pub fn total_s_keyed(
        &mut self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (f64, bool) {
        if let Some(backend) = &self.backend {
            let (total_s, was_hit) = backend.total_s_keyed(key, model, scheduled);
            self.count(was_hit);
            self.emit_lookup(was_hit);
            return (total_s, was_hit);
        }
        let (estimate, was_hit) = self.local_lookup(key, model, scheduled);
        let total_s = estimate.total_s;
        self.emit_lookup(was_hit);
        (total_s, was_hit)
    }

    /// Mirrors one lookup classification into the trace: a hit or a miss,
    /// and — in shared mode, where every miss charges the common ledger —
    /// the budget-spend delta. Purely observational: emission never touches
    /// the lookup result, so traced and untraced runs stay bit-identical.
    fn emit_lookup(&self, was_hit: bool) {
        if !self.probe.is_enabled() {
            return;
        }
        if was_hit {
            self.probe.emit(EventKind::CacheHit, None, [0, 0, 0]);
        } else {
            self.probe.emit(EventKind::CacheMiss, None, [0, 0, 0]);
            if let Some(backend) = &self.backend {
                let budget = backend.budget();
                self.probe
                    .emit(EventKind::BudgetCharge, None, [1, budget.spent(), 0]);
            }
        }
    }

    fn count(&mut self, was_hit: bool) {
        if was_hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    fn local_lookup(
        &mut self,
        key: ScheduleKey,
        model: &CostModel,
        scheduled: &ScheduledModule,
    ) -> (&ModuleEstimate, bool) {
        use std::collections::hash_map::Entry;
        if self.shared.contains_key(&key) {
            self.hits += 1;
            return (self.shared.get(&key).expect("checked above"), true);
        }
        if self.local.len() + self.shared.len() >= self.capacity && !self.local.contains_key(&key) {
            self.local.clear();
            self.shared = Arc::new(HashMap::new());
        }
        match self.local.entry(key) {
            Entry::Occupied(entry) => {
                self.hits += 1;
                (entry.into_mut(), true)
            }
            Entry::Vacant(entry) => {
                self.misses += 1;
                (entry.insert(model.estimate_scheduled(scheduled)), false)
            }
        }
    }

    /// Folds the local overlay into the shared snapshot, so clones share one
    /// snapshot and carry an empty overlay. No-op in shared mode (there is
    /// nothing local to fold).
    pub fn consolidate(&mut self) {
        if self.local.is_empty() {
            return;
        }
        let shared = Arc::make_mut(&mut self.shared);
        for (key, estimate) in self.local.drain() {
            shared.entry(key).or_insert(estimate);
        }
    }

    /// Number of lookups served from the cache *through this handle*.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that ran the estimator *through this handle*.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of memoized estimates (of the shared table when in shared
    /// mode).
    pub fn len(&self) -> usize {
        match &self.backend {
            Some(backend) => backend.len(),
            None => self.shared.len() + self.local.len(),
        }
    }

    /// True if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all memoized estimates (counters are kept).
    pub fn clear(&mut self) {
        self.local.clear();
        self.shared = Arc::new(HashMap::new());
        if let Some(backend) = &self.backend {
            backend.clear();
        }
    }

    /// Merges another cache's entries into this one (worker caches are
    /// folded back into the trainer's master cache after a parallel rollout
    /// batch). When both caches are handles onto the same shared table this
    /// is a no-op; otherwise the other cache's entries are walked into this
    /// one. Counters are not merged: hit/miss accounting stays with the
    /// cache that observed the lookups.
    pub fn absorb(&mut self, other: EvalCache) {
        if let (Some(a), Some(b)) = (&self.backend, &other.backend) {
            if a.same_table(b) {
                return;
            }
        }
        if let Some(backend) = &self.backend {
            // Shared receiver: push the other cache's local entries in.
            for (key, estimate) in other.shared.iter() {
                backend.insert(*key, estimate.clone());
            }
            for (key, estimate) in other.local {
                backend.insert(key, estimate);
            }
            return;
        }
        if !Arc::ptr_eq(&self.shared, &other.shared) {
            for (key, estimate) in other.shared.iter() {
                if self.len() >= self.capacity {
                    break;
                }
                if !self.shared.contains_key(key) {
                    self.local.entry(*key).or_insert_with(|| estimate.clone());
                }
            }
        }
        for (key, estimate) in other.local {
            if self.len() >= self.capacity {
                break;
            }
            if !self.shared.contains_key(&key) {
                self.local.entry(key).or_insert(estimate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineModel;
    use mlir_rl_ir::{ModuleBuilder, OpId};
    use mlir_rl_transforms::Transformation;

    fn matmul(m: u64, n: u64, k: u64) -> Module {
        let mut b = ModuleBuilder::new("cache_test");
        let a = b.argument("A", vec![m, k]);
        let w = b.argument("B", vec![k, n]);
        b.matmul(a, w);
        b.finish()
    }

    #[test]
    fn cached_result_matches_direct_evaluation() {
        let cm = CostModel::new(MachineModel::default());
        let mut cache = EvalCache::default();
        let mut sm = ScheduledModule::new(matmul(64, 64, 64));
        sm.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![8, 8, 0],
            },
        )
        .unwrap();
        let direct = cm.estimate_scheduled(&sm);
        let cached = cache.estimate(&cm, &sm);
        assert_eq!(direct, cached);
        assert_eq!(cache.misses(), 1);
        // Second lookup is a hit and returns the identical estimate; the
        // hit survives consolidation into the shared snapshot.
        let again = cache.estimate(&cm, &sm);
        assert_eq!(direct, again);
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        cache.consolidate();
        assert_eq!(direct, cache.estimate(&cm, &sm));
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn different_schedules_get_different_keys() {
        let base = ScheduledModule::new(matmul(64, 64, 64));
        let mut tiled = base.clone();
        tiled
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![8, 8, 0],
                },
            )
            .unwrap();
        assert_ne!(schedule_key(&base), schedule_key(&tiled));
        // Same module fingerprint, different schedule fingerprint.
        assert_eq!(schedule_key(&base).module, schedule_key(&tiled).module);
    }

    #[test]
    fn different_modules_get_different_keys() {
        let a = ScheduledModule::new(matmul(64, 64, 64));
        let b = ScheduledModule::new(matmul(128, 64, 64));
        assert_ne!(schedule_key(&a).module, schedule_key(&b).module);
    }

    #[test]
    fn same_name_different_body_gets_different_keys() {
        // Two modules with identical names, shapes and iterator types but
        // different op kinds/arithmetic must not share a fingerprint.
        let mut b1 = ModuleBuilder::new("twin");
        let x1 = b1.argument("x", vec![64, 64]);
        let y1 = b1.argument("y", vec![64, 64]);
        b1.add(x1, y1);
        let mut b2 = ModuleBuilder::new("twin");
        let x2 = b2.argument("x", vec![64, 64]);
        let _y2 = b2.argument("y", vec![64, 64]);
        b2.sigmoid(x2);
        assert_ne!(
            module_fingerprint(&b1.finish()),
            module_fingerprint(&b2.finish())
        );
    }

    #[test]
    fn capacity_overflow_resets_the_table() {
        let cm = CostModel::new(MachineModel::default());
        let mut cache = EvalCache::new(2);
        for size in [32u64, 48, 64] {
            let sm = ScheduledModule::new(matmul(size, size, size));
            cache.estimate(&cm, &sm);
        }
        assert!(cache.len() <= 2, "capacity must bound the table");
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn absorb_merges_entries_without_touching_counters() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        let mut b = EvalCache::default();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        b.estimate(&cm, &sm);
        a.absorb(b);
        assert_eq!(a.len(), 1);
        assert_eq!(a.misses(), 0);
        // The absorbed entry now serves hits.
        a.estimate(&cm, &sm);
        assert_eq!(a.hits(), 1);
    }

    #[test]
    fn absorb_merges_a_foreign_snapshot_too() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        let mut b = EvalCache::default();
        let sm = ScheduledModule::new(matmul(48, 48, 48));
        b.estimate(&cm, &sm);
        b.consolidate();
        a.absorb(b);
        assert_eq!(a.len(), 1);
        a.estimate(&cm, &sm);
        assert_eq!(a.hits(), 1);
    }

    #[test]
    fn clones_share_the_snapshot_cheaply() {
        let cm = CostModel::new(MachineModel::default());
        let mut master = EvalCache::default();
        for size in [32u64, 48, 64] {
            let sm = ScheduledModule::new(matmul(size, size, size));
            master.estimate(&cm, &sm);
        }
        master.consolidate();
        let mut worker = master.clone();
        // Worker hits come from the shared snapshot; new entries land in
        // the worker's (initially empty) overlay only.
        let sm = ScheduledModule::new(matmul(32, 32, 32));
        worker.estimate(&cm, &sm);
        assert_eq!(worker.hits(), master.hits() + 1);
        let fresh = ScheduledModule::new(matmul(96, 96, 96));
        worker.estimate(&cm, &fresh);
        assert_eq!(worker.len(), 4);
        assert_eq!(master.len(), 3);
        // Folding the worker back transfers only the new entry.
        master.absorb(worker);
        assert_eq!(master.len(), 4);
    }

    #[test]
    fn make_shared_migrates_entries_and_shares_between_clones() {
        let cm = CostModel::new(MachineModel::default());
        let mut master = EvalCache::default();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        master.estimate(&cm, &sm);
        master.consolidate();
        let overlay = ScheduledModule::new(matmul(48, 48, 48));
        master.estimate(&cm, &overlay);
        let handle = master.make_shared();
        assert!(master.is_shared());
        assert_eq!(master.len(), 2, "snapshot and overlay entries migrate");

        // A clone taken after the conversion is a handle to the same table:
        // entries inserted through one handle serve hits through the other.
        let mut worker = master.clone();
        let fresh = ScheduledModule::new(matmul(96, 96, 96));
        let misses_before = worker.misses();
        worker.estimate(&cm, &fresh);
        assert_eq!(worker.misses(), misses_before + 1, "fresh key is a miss");
        let (_, was_hit) = master.estimate_keyed(schedule_key(&fresh), &cm, &fresh);
        assert!(was_hit, "the worker's insert is visible to the master");
        assert_eq!(handle.len(), 3);

        // Migrated entries serve hits too, and shared values match direct
        // evaluation.
        let (est, was_hit) = master.estimate_keyed(schedule_key(&sm), &cm, &sm);
        assert!(was_hit);
        assert_eq!(est, cm.estimate_scheduled(&sm));

        // make_shared is idempotent.
        assert!(master.make_shared().same_table(&handle));
    }

    #[test]
    fn shared_global_counters_aggregate_across_handles() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        let handle = a.make_shared();
        let mut b = a.clone();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        a.estimate(&cm, &sm); // global miss
        b.estimate(&cm, &sm); // global hit
        assert_eq!(handle.misses(), 1);
        assert_eq!(handle.hits(), 1);
        assert!((handle.hit_rate() - 0.5).abs() < 1e-12);
        // Per-handle counters stay local.
        assert_eq!((a.hits(), a.misses()), (0, 1));
        assert_eq!((b.hits(), b.misses()), (1, 0));
    }

    #[test]
    fn absorb_between_same_table_handles_is_a_noop() {
        let cm = CostModel::new(MachineModel::default());
        let mut a = EvalCache::default();
        a.make_shared();
        let mut b = a.clone();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        b.estimate(&cm, &sm);
        a.absorb(b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn absorb_local_into_shared_migrates_entries() {
        let cm = CostModel::new(MachineModel::default());
        let mut shared = EvalCache::default();
        shared.make_shared();
        let mut local = EvalCache::default();
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        local.estimate(&cm, &sm);
        shared.absorb(local);
        assert_eq!(shared.len(), 1);
        let (_, was_hit) = shared.estimate_keyed(schedule_key(&sm), &cm, &sm);
        assert!(was_hit);
    }

    #[test]
    fn shared_cache_is_consistent_under_concurrent_lookups() {
        let cm = CostModel::new(MachineModel::default());
        let handle = SharedEvalCache::new(1 << 12);
        let sizes: Vec<u64> = (1..24).map(|i| 16 * i).collect();
        let expected: Vec<f64> = sizes
            .iter()
            .map(|s| {
                cm.estimate_scheduled(&ScheduledModule::new(matmul(*s, *s, *s)))
                    .total_s
            })
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = handle.clone();
                let cm = cm.clone();
                let sizes = sizes.clone();
                let expected = expected.clone();
                scope.spawn(move || {
                    for (size, want) in sizes.iter().zip(&expected) {
                        let sm = ScheduledModule::new(matmul(*size, *size, *size));
                        let (got, _) = handle.total_s_keyed(schedule_key(&sm), &cm, &sm);
                        assert_eq!(got, *want, "shared value must match direct evaluation");
                    }
                });
            }
        });
        assert_eq!(handle.len(), sizes.len());
        assert_eq!(handle.hits() + handle.misses(), 4 * sizes.len() as u64);
    }

    #[test]
    fn shared_cache_misses_charge_the_attached_budget() {
        let cm = CostModel::new(MachineModel::default());
        let ledger = EvalBudget::limited(2);
        let handle = SharedEvalCache::new(1 << 12).with_budget(ledger.clone());
        let sm = ScheduledModule::new(matmul(64, 64, 64));
        handle.total_s_keyed(schedule_key(&sm), &cm, &sm); // miss: 1 unit
        handle.total_s_keyed(schedule_key(&sm), &cm, &sm); // hit: free
        assert_eq!(ledger.spent(), 1);
        assert!(!ledger.is_exhausted());
        let sm2 = ScheduledModule::new(matmul(32, 32, 32));
        // Clones share the ledger along with the table.
        let clone = handle.clone();
        clone.total_s_keyed(schedule_key(&sm2), &cm, &sm2); // miss: 1 unit
        assert!(ledger.is_exhausted());
        assert!(handle.budget().same_ledger(&ledger));
        assert_eq!(ledger.spent(), handle.misses());
    }

    #[test]
    fn shared_shard_overflow_resets_only_that_shard() {
        let cm = CostModel::new(MachineModel::default());
        // Tiny capacity: every shard holds one entry.
        let handle = SharedEvalCache::new(SHARED_CACHE_SHARDS);
        for i in 1..40u64 {
            let sm = ScheduledModule::new(matmul(8 * i, 8 * i, 8 * i));
            handle.total_s_keyed(schedule_key(&sm), &cm, &sm);
        }
        assert!(handle.len() <= SHARED_CACHE_SHARDS);
        assert!(!handle.is_empty());
    }
}
