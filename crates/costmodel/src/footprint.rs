//! Working-set (footprint) analysis and cache-traffic estimation.
//!
//! Given the polyhedral access matrices of an operation and the lowered loop
//! nest of its schedule, this module estimates how many bytes must be
//! fetched from beyond a cache of a given capacity. The model walks the loop
//! nest from the outermost loop inwards, finds the largest sub-nest whose
//! combined working set fits in the cache, and charges one load of that
//! working set per operand for every outer iteration that changes the data
//! the operand touches. This is the standard footprint/reuse analysis used
//! by analytical tiling models and is exactly the mechanism the paper's
//! transformations (tiling, interchange, fusion) are meant to exploit.

use mlir_rl_ir::{AccessMatrix, IrError, LinalgOp};
use mlir_rl_transforms::LoopNest;

/// The access pattern of one tensor operand of an operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OperandAccess {
    /// Polyhedral access matrix (tensor dims x loop iterators).
    pub matrix: AccessMatrix,
    /// Shape of the accessed tensor.
    pub shape: Vec<u64>,
    /// Size of one element in bytes.
    pub element_bytes: u64,
    /// Whether the operand is written (the output of the op).
    pub is_output: bool,
}

impl OperandAccess {
    /// Whether loop iterator `j` is used (with a non-zero coefficient) by
    /// this operand.
    pub fn uses_iterator(&self, j: usize) -> bool {
        self.matrix
            .coefficients
            .iter()
            .any(|row| row.get(j).copied().unwrap_or(0) != 0)
    }

    /// Whether the access is unit-stride in iterator `j` (the
    /// fastest-varying tensor dimension is exactly `j`).
    pub fn unit_stride_in(&self, j: usize) -> bool {
        self.matrix.unit_stride_in(j)
    }

    /// Total bytes of the full tensor.
    pub fn tensor_bytes(&self) -> u64 {
        self.shape.iter().product::<u64>() * self.element_bytes
    }
}

/// Extracts the operand accesses (inputs then output) of an operation.
///
/// # Errors
///
/// Propagates [`IrError`] from malformed indexing maps.
pub fn operand_accesses(op: &LinalgOp) -> Result<Vec<OperandAccess>, IrError> {
    let matrices = op.access_matrices()?;
    let mut out = Vec::with_capacity(matrices.len());
    for (i, matrix) in matrices.into_iter().enumerate() {
        let (shape, element_bytes, is_output) = if i < op.inputs.len() {
            (
                op.input_types[i].shape().to_vec(),
                op.input_types[i].element().size_bytes() as u64,
                false,
            )
        } else {
            (
                op.result_type.shape().to_vec(),
                op.result_type.element().size_bytes() as u64,
                true,
            )
        };
        out.push(OperandAccess {
            matrix,
            shape,
            element_bytes,
            is_output,
        });
    }
    Ok(out)
}

/// Range of values covered by iterator `iterator` within the sub-nest
/// consisting of loop positions `pos..` of the lowered nest.
fn iterator_extent_in_subnest(nest: &LoopNest, pos: usize, iterator: usize) -> u64 {
    let product: u64 = nest.loops[pos..]
        .iter()
        .filter(|l| l.iterator == iterator)
        .map(|l| l.extent)
        .product();
    let full = nest.full_extents.get(iterator).copied().unwrap_or(1).max(1);
    product.clamp(1, full)
}

/// Cache-line size used by the traffic model: accesses that touch isolated
/// elements of a tensor dimension still pull in whole lines.
pub const CACHE_LINE_BYTES: u64 = 64;

/// Number of elements of tensor dimension `d` of `access` touched by one
/// execution of the sub-nest starting at loop position `pos`.
fn dim_extent_in_subnest(access: &OperandAccess, nest: &LoopNest, pos: usize, d: usize) -> u64 {
    let Some(row) = access.matrix.coefficients.get(d) else {
        return 1;
    };
    let mut extent: u64 = 1;
    for (j, coeff) in row.iter().enumerate() {
        if *coeff == 0 {
            continue;
        }
        let it_extent = iterator_extent_in_subnest(nest, pos, j);
        extent += coeff.unsigned_abs() * (it_extent - 1);
    }
    let dim_size = access.shape.get(d).copied().unwrap_or(1).max(1);
    extent.min(dim_size)
}

/// Bytes of operand `access` touched by one execution of the sub-nest
/// starting at loop position `pos` (`pos == nest.depth()` means a single
/// iteration point).
pub fn operand_subnest_footprint(access: &OperandAccess, nest: &LoopNest, pos: usize) -> u64 {
    let mut elements: u64 = 1;
    for d in 0..access.matrix.coefficients.len() {
        elements = elements.saturating_mul(dim_extent_in_subnest(access, nest, pos, d));
    }
    elements.saturating_mul(access.element_bytes)
}

/// Cache-line waste factor for loading one block of `access` (the sub-nest
/// starting at `pos`): when the block touches only a short run of the
/// tensor's fastest-varying dimension, every element drags in a mostly
/// unused cache line.
fn line_waste_factor(access: &OperandAccess, nest: &LoopNest, pos: usize) -> u64 {
    if access.shape.is_empty() || access.element_bytes == 0 {
        return 1;
    }
    let last = access.shape.len() - 1;
    let run_bytes = dim_extent_in_subnest(access, nest, pos, last) * access.element_bytes;
    let max_waste = (CACHE_LINE_BYTES / access.element_bytes).max(1);
    (CACHE_LINE_BYTES / run_bytes.max(1)).clamp(1, max_waste)
}

/// Combined working set of all operands for the sub-nest starting at `pos`.
pub fn subnest_footprint(accesses: &[OperandAccess], nest: &LoopNest, pos: usize) -> u64 {
    accesses
        .iter()
        .map(|a| operand_subnest_footprint(a, nest, pos))
        .sum()
}

/// Per-operand traffic (in bytes) that must be served from beyond a cache of
/// `capacity_bytes`, for one execution of the full loop nest.
///
/// Returns one entry per operand, in the same order as `accesses`.
pub fn traffic_beyond_cache(
    accesses: &[OperandAccess],
    nest: &LoopNest,
    capacity_bytes: u64,
) -> Vec<u64> {
    let depth = nest.depth();
    // Combined working set of every sub-nest position (position `depth` is a
    // single iteration point and always "fits").
    let footprints: Vec<u64> = (0..=depth)
        .map(|pos| subnest_footprint(accesses, nest, pos))
        .collect();
    // Outermost position whose working set fits in the cache.
    let fit_pos = (0..=depth)
        .find(|pos| footprints[*pos] <= capacity_bytes)
        .unwrap_or(depth);

    accesses
        .iter()
        .map(|access| {
            // The block loaded per execution of the fitting sub-nest; blocks
            // with a short contiguous run along the tensor's fastest
            // dimension waste most of each cache line.
            let block = operand_subnest_footprint(access, nest, fit_pos)
                .saturating_mul(line_waste_factor(access, nest, fit_pos));
            // An outer loop forces a reload of the operand's block unless
            // (a) the loop does not index the operand, and (b) the data
            // touched during one iteration of that loop still fits in the
            // cache — otherwise the block has been evicted before it is
            // reused.
            let reload_factor: u64 = nest.loops[..fit_pos]
                .iter()
                .enumerate()
                .filter(|(pos, l)| {
                    access.uses_iterator(l.iterator) || footprints[pos + 1] > capacity_bytes
                })
                .map(|(_, l)| l.extent)
                .product();
            let traffic = block.saturating_mul(reload_factor.max(1));
            // Never less than the compulsory traffic (the full touched
            // region read once), never more than one full cache line per
            // access.
            let compulsory = operand_subnest_footprint(access, nest, 0);
            let worst_case = nest.total_iterations().saturating_mul(CACHE_LINE_BYTES);
            traffic.clamp(compulsory, compulsory.max(worst_case))
        })
        .collect()
}

/// Total traffic beyond a cache of the given capacity, summed over operands.
pub fn total_traffic_beyond_cache(
    accesses: &[OperandAccess],
    nest: &LoopNest,
    capacity_bytes: u64,
) -> u64 {
    traffic_beyond_cache(accesses, nest, capacity_bytes)
        .iter()
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_ir::{ModuleBuilder, OpId};
    use mlir_rl_transforms::{ScheduledModule, Transformation};

    fn matmul_setup() -> (ScheduledModule, Vec<OperandAccess>) {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![256, 1024]);
        let w = b.argument("B", vec![1024, 512]);
        b.matmul(a, w);
        let sm = ScheduledModule::new(b.finish());
        let accesses = operand_accesses(sm.module().op(OpId(0)).unwrap()).unwrap();
        (sm, accesses)
    }

    #[test]
    fn operand_accesses_structure() {
        let (_, accesses) = matmul_setup();
        assert_eq!(accesses.len(), 3);
        assert!(!accesses[0].is_output);
        assert!(accesses[2].is_output);
        // A[d0, d2] uses iterators 0 and 2 only.
        assert!(accesses[0].uses_iterator(0));
        assert!(!accesses[0].uses_iterator(1));
        assert!(accesses[0].uses_iterator(2));
        // C[d0, d1] is unit-stride in d1 (its fastest dim).
        assert!(accesses[2].unit_stride_in(1));
        assert!(!accesses[2].unit_stride_in(0));
        assert_eq!(accesses[0].tensor_bytes(), 256 * 1024 * 4);
    }

    #[test]
    fn whole_nest_footprint_is_sum_of_tensors() {
        let (sm, accesses) = matmul_setup();
        let nest = sm.lower(OpId(0));
        let fp = subnest_footprint(&accesses, &nest, 0);
        let expected = (256 * 1024 + 1024 * 512 + 256 * 512) * 4;
        assert_eq!(fp, expected);
    }

    #[test]
    fn innermost_subnest_footprint_is_small() {
        let (sm, accesses) = matmul_setup();
        let nest = sm.lower(OpId(0));
        // The innermost loop is the reduction (k, extent 1024): it touches a
        // row of A (1024 elements), a column of B (1024 elements) and a
        // single element of C.
        let pos = nest.depth() - 1;
        let fp = subnest_footprint(&accesses, &nest, pos);
        assert_eq!(fp, (1024 + 1024 + 1) * 4);
        // A single iteration point touches one element of each operand.
        let fp_point = subnest_footprint(&accesses, &nest, nest.depth());
        assert_eq!(fp_point, 3 * 4);
    }

    #[test]
    fn tiling_reduces_traffic_beyond_small_cache() {
        let (mut sm, accesses) = matmul_setup();
        let capacity = 256 * 1024; // L2-sized
        let untiled_nest = sm.lower(OpId(0));
        let untiled = total_traffic_beyond_cache(&accesses, &untiled_nest, capacity);

        sm.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![64, 64, 64],
            },
        )
        .unwrap();
        let tiled_nest = sm.lower(OpId(0));
        let tiled = total_traffic_beyond_cache(&accesses, &tiled_nest, capacity);

        assert!(
            tiled < untiled / 2,
            "tiling should cut L2 traffic substantially: tiled={tiled} untiled={untiled}"
        );
    }

    #[test]
    fn traffic_never_below_compulsory() {
        let (sm, accesses) = matmul_setup();
        let nest = sm.lower(OpId(0));
        // With an enormous cache everything fits: traffic equals tensor
        // sizes (compulsory misses only).
        let traffic = traffic_beyond_cache(&accesses, &nest, u64::MAX / 4);
        assert_eq!(traffic[0], 256 * 1024 * 4);
        assert_eq!(traffic[1], 1024 * 512 * 4);
        assert_eq!(traffic[2], 256 * 512 * 4);
    }

    #[test]
    fn tiny_cache_traffic_is_bounded_by_total_accesses() {
        let (sm, accesses) = matmul_setup();
        let nest = sm.lower(OpId(0));
        let traffic = traffic_beyond_cache(&accesses, &nest, 64);
        let total_iters = 256u64 * 512 * 1024;
        for t in &traffic {
            assert!(*t <= total_iters * CACHE_LINE_BYTES);
        }
        // With essentially no cache, operands indexed by all three loops
        // (none here) would miss every access; A misses once per (i, k)
        // repeated for every j unless cached — here it must be at least its
        // compulsory size.
        assert!(traffic[0] >= 256 * 1024 * 4);
    }

    #[test]
    fn interchange_affects_traffic() {
        // With j innermost (default i, j, k order has k innermost), compare
        // against k-outermost order: traffic beyond a small cache should
        // differ, demonstrating the model is sensitive to loop order.
        let (mut sm, accesses) = matmul_setup();
        let capacity = 32 * 1024;
        let default_nest = sm.lower(OpId(0));
        let default_traffic = total_traffic_beyond_cache(&accesses, &default_nest, capacity);

        sm.apply(
            OpId(0),
            Transformation::Interchange {
                permutation: vec![2, 0, 1],
            },
        )
        .unwrap();
        let interchanged_nest = sm.lower(OpId(0));
        let interchanged_traffic =
            total_traffic_beyond_cache(&accesses, &interchanged_nest, capacity);
        assert_ne!(default_traffic, interchanged_traffic);
    }

    #[test]
    fn strided_conv_footprint_clamped_to_tensor() {
        let mut b = ModuleBuilder::new("c");
        let x = b.argument("x", vec![1, 3, 16, 16]);
        let w = b.argument("w", vec![8, 3, 3, 3]);
        b.conv2d(x, w, 2);
        let sm = ScheduledModule::new(b.finish());
        let op = sm.module().op(OpId(0)).unwrap();
        let accesses = operand_accesses(op).unwrap();
        let nest = sm.lower(OpId(0));
        // The input footprint of the whole nest can never exceed the input
        // tensor size even though the strided access doubles the apparent
        // extent.
        let fp = operand_subnest_footprint(&accesses[0], &nest, 0);
        assert!(fp <= accesses[0].tensor_bytes());
    }
}
