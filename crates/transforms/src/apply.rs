//! Schedule state, legality checking, and lowering to loop nests.
//!
//! A [`ScheduledModule`] wraps an IR module together with the schedule state
//! of every operation. The RL environment applies [`Transformation`]s to it
//! one at a time (after checking legality via [`ScheduledModule::check`]) and
//! finally lowers every live operation to a [`LoopNest`] for cost
//! evaluation.

use serde::{Deserialize, Serialize};

use mlir_rl_ir::{IteratorType, LinalgOp, Module, OpId};

use crate::error::TransformError;
use crate::nest::{FusedProducer, LoopDim, LoopKind, LoopNest};
use crate::transform::{Schedule, Transformation, TransformationKind};

/// Default maximum schedule length τ (the paper sets the maximum schedule
/// length to 5).
pub const DEFAULT_MAX_SCHEDULE_LEN: usize = 5;

/// The paper's action-mask restriction on vectorization: the innermost loop
/// must not exceed 512 iterations, because MLIR's vectorizer fully unrolls
/// the innermost loop.
pub const MAX_VECTORIZABLE_INNER_EXTENT: u64 = 512;

/// Per-operation schedule state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpScheduleState {
    /// Transformations applied so far, in order.
    pub schedule: Schedule,
    /// Effective tile size per *original* iterator (0 = untiled).
    pub tile_sizes: Vec<u64>,
    /// Whether the outer tile loops are parallelized (`scf.forall`).
    pub parallelized: bool,
    /// Current loop order: `order[i]` is the original iterator at position
    /// `i`.
    pub order: Vec<usize>,
    /// Whether the op was vectorized (terminal).
    pub vectorized: bool,
    /// Whether optimization of this op was explicitly stopped.
    pub stopped: bool,
    /// Producers fused into this op.
    pub fused_producers: Vec<OpId>,
    /// Set if this op was fused into a consumer and no longer executes on
    /// its own.
    pub fused_into: Option<OpId>,
}

impl OpScheduleState {
    fn new(num_loops: usize) -> Self {
        Self {
            schedule: Vec::new(),
            tile_sizes: vec![0; num_loops],
            parallelized: false,
            order: (0..num_loops).collect(),
            vectorized: false,
            stopped: false,
            fused_producers: Vec::new(),
            fused_into: None,
        }
    }

    /// True once no further transformation may be applied to this op.
    pub fn is_terminated(&self) -> bool {
        self.vectorized || self.stopped || self.fused_into.is_some()
    }

    /// The loop bounds as currently seen by the agent (in interchange
    /// order).
    pub fn visible_bounds(&self, op: &LinalgOp) -> Vec<u64> {
        self.order.iter().map(|i| op.loop_bounds[*i]).collect()
    }

    /// The iterator types in the current loop order.
    pub fn visible_iterator_types(&self, op: &LinalgOp) -> Vec<IteratorType> {
        self.order.iter().map(|i| op.iterator_types[*i]).collect()
    }

    /// Extent of the point loop at current position `pos`.
    fn point_extent_at(&self, op: &LinalgOp, pos: usize) -> u64 {
        let it = self.order[pos];
        if self.tile_sizes[it] == 0 {
            op.loop_bounds[it]
        } else {
            self.tile_sizes[it].min(op.loop_bounds[it])
        }
    }
}

/// A module plus the schedule state of each of its operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledModule {
    module: Module,
    states: Vec<OpScheduleState>,
    max_schedule_len: usize,
}

impl ScheduledModule {
    /// Wraps a module with empty schedules, using the default maximum
    /// schedule length of 5.
    pub fn new(module: Module) -> Self {
        Self::with_max_schedule_len(module, DEFAULT_MAX_SCHEDULE_LEN)
    }

    /// Wraps a module with a custom maximum schedule length τ.
    pub fn with_max_schedule_len(module: Module, max_schedule_len: usize) -> Self {
        let states = module
            .ops()
            .iter()
            .map(|o| OpScheduleState::new(o.num_loops()))
            .collect();
        Self {
            module,
            states,
            max_schedule_len,
        }
    }

    /// The underlying module.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The maximum schedule length τ.
    pub fn max_schedule_len(&self) -> usize {
        self.max_schedule_len
    }

    /// Schedule state of an operation.
    ///
    /// # Panics
    ///
    /// Panics if the op id does not belong to this module.
    pub fn state(&self, op: OpId) -> &OpScheduleState {
        &self.states[op.0]
    }

    /// All schedule states, indexed by operation id.
    pub fn states(&self) -> &[OpScheduleState] {
        &self.states
    }

    /// Operations that still execute (i.e. were not fused away), in program
    /// order.
    pub fn live_ops(&self) -> Vec<OpId> {
        self.module
            .ops()
            .iter()
            .filter(|o| self.states[o.id.0].fused_into.is_none())
            .map(|o| o.id)
            .collect()
    }

    /// Checks whether `t` can legally be applied to `op` in the current
    /// state, without applying it.
    ///
    /// # Errors
    ///
    /// Returns a [`TransformError`] describing the violated rule.
    pub fn check(&self, op: OpId, t: &Transformation) -> Result<(), TransformError> {
        let linalg_op = self
            .module
            .op(op)
            .unwrap_or_else(|_| panic!("operation {op} not in module"));
        let state = &self.states[op.0];

        if state.fused_into.is_some() {
            return Err(TransformError::OperationFusedAway { op });
        }
        if state.vectorized {
            return Err(TransformError::AlreadyVectorized);
        }
        if state.schedule.len() >= self.max_schedule_len
            && t.kind() != TransformationKind::NoTransformation
        {
            return Err(TransformError::ScheduleFull {
                max_len: self.max_schedule_len,
            });
        }

        let n = linalg_op.num_loops();
        match t {
            Transformation::Tiling { tile_sizes } => {
                self.check_tile_sizes(linalg_op, state, tile_sizes)
            }
            Transformation::TiledParallelization { tile_sizes } => {
                self.check_tile_sizes(linalg_op, state, tile_sizes)?;
                // The outermost generated loop is parallelized; it must not
                // be a reduction iterator.
                let outer_pos = (0..n)
                    .find(|pos| {
                        let it = state.order[*pos];
                        tile_sizes[*pos] > 0 || state.tile_sizes[it] > 0
                    })
                    .unwrap_or(0);
                let outer_it = state.order[outer_pos];
                if linalg_op.iterator_types[outer_it] == IteratorType::Reduction {
                    return Err(TransformError::ParallelizingReduction { level: outer_pos });
                }
                Ok(())
            }
            Transformation::TiledFusion {
                tile_sizes,
                producer,
            } => {
                self.check_tile_sizes(linalg_op, state, tile_sizes)?;
                let producers = self.module.producers(op);
                if producers.is_empty() {
                    return Err(TransformError::NoProducerToFuse { op });
                }
                if !producers.contains(producer) {
                    return Err(TransformError::NotAProducer {
                        op,
                        producer: *producer,
                    });
                }
                let pstate = &self.states[producer.0];
                if pstate.fused_into.is_some() {
                    return Err(TransformError::OperationFusedAway { op: *producer });
                }
                // Linalg fusion has limited ability to fuse a modified
                // producer (Sec. III): only untouched producers are fused.
                if !pstate.schedule.is_empty() {
                    return Err(TransformError::ProducerAlreadyScheduled {
                        producer: *producer,
                    });
                }
                Ok(())
            }
            Transformation::Interchange { permutation } => {
                if !is_permutation(permutation, n) {
                    return Err(TransformError::InvalidPermutation {
                        permutation: permutation.clone(),
                        loops: n,
                    });
                }
                Ok(())
            }
            Transformation::Vectorization => {
                if !linalg_op.vectorization_precondition() {
                    return Err(TransformError::VectorizationPrecondition {
                        reason: "indexing maps are not projected permutations".into(),
                    });
                }
                let inner_extent = state.point_extent_at(linalg_op, n - 1);
                if inner_extent > MAX_VECTORIZABLE_INNER_EXTENT {
                    return Err(TransformError::VectorizationPrecondition {
                        reason: format!(
                            "innermost loop has {inner_extent} iterations, more than the {MAX_VECTORIZABLE_INNER_EXTENT} the MLIR vectorizer can unroll"
                        ),
                    });
                }
                Ok(())
            }
            Transformation::NoTransformation => Ok(()),
        }
    }

    fn check_tile_sizes(
        &self,
        op: &LinalgOp,
        state: &OpScheduleState,
        tile_sizes: &[u64],
    ) -> Result<(), TransformError> {
        let n = op.num_loops();
        if tile_sizes.len() != n {
            return Err(TransformError::TileSizeArity {
                loops: n,
                provided: tile_sizes.len(),
            });
        }
        for (pos, tile) in tile_sizes.iter().enumerate() {
            let it = state.order[pos];
            let bound = op.loop_bounds[it];
            if *tile > bound {
                return Err(TransformError::TileSizeTooLarge {
                    level: pos,
                    tile: *tile,
                    bound,
                });
            }
        }
        Ok(())
    }

    /// Applies a transformation to an operation after checking legality.
    ///
    /// Tile sizes and interchange permutations are given in the operation's
    /// *current* loop order (the order the agent observes).
    ///
    /// # Errors
    ///
    /// Returns a [`TransformError`] if the transformation is illegal; the
    /// state is left unchanged in that case.
    pub fn apply(&mut self, op: OpId, t: Transformation) -> Result<(), TransformError> {
        self.check(op, &t)?;
        let num_loops = self.module.op(op).expect("checked above").num_loops();

        match &t {
            Transformation::Tiling { tile_sizes } => {
                self.set_tiles(op, tile_sizes);
            }
            Transformation::TiledParallelization { tile_sizes } => {
                self.set_tiles(op, tile_sizes);
                self.states[op.0].parallelized = true;
            }
            Transformation::TiledFusion {
                tile_sizes,
                producer,
            } => {
                self.set_tiles(op, tile_sizes);
                self.states[op.0].fused_producers.push(*producer);
                self.states[producer.0].fused_into = Some(op);
            }
            Transformation::Interchange { permutation } => {
                let state = &mut self.states[op.0];
                let new_order: Vec<usize> =
                    permutation.iter().map(|pos| state.order[*pos]).collect();
                state.order = new_order;
                debug_assert!(is_permutation(&state.order, num_loops));
            }
            Transformation::Vectorization => {
                self.states[op.0].vectorized = true;
            }
            Transformation::NoTransformation => {
                self.states[op.0].stopped = true;
            }
        }
        self.states[op.0].schedule.push(t);
        Ok(())
    }

    fn set_tiles(&mut self, op: OpId, tile_sizes: &[u64]) {
        let order = self.states[op.0].order.clone();
        let state = &mut self.states[op.0];
        for (pos, tile) in tile_sizes.iter().enumerate() {
            let it = order[pos];
            if *tile > 0 {
                state.tile_sizes[it] = *tile;
            }
        }
    }

    /// Lowers one operation to its loop-nest form.
    ///
    /// # Panics
    ///
    /// Panics if the op id does not belong to this module.
    pub fn lower(&self, op: OpId) -> LoopNest {
        let linalg_op = self.module.op(op).expect("op belongs to module");
        let state = &self.states[op.0];
        let n = linalg_op.num_loops();

        let mut loops = Vec::new();
        // Outer tile loops, in current order, for every tiled iterator.
        for pos in 0..n {
            let it = state.order[pos];
            let tile = state.tile_sizes[it];
            if tile > 0 {
                let bound = linalg_op.loop_bounds[it];
                let trips = bound.div_ceil(tile);
                let iterator_type = linalg_op.iterator_types[it];
                let kind = if state.parallelized && iterator_type == IteratorType::Parallel {
                    LoopKind::ParallelTile
                } else {
                    LoopKind::Tile
                };
                loops.push(LoopDim {
                    iterator: it,
                    extent: trips,
                    kind,
                    iterator_type,
                });
            }
        }
        // Point loops, in current order.
        for pos in 0..n {
            let it = state.order[pos];
            loops.push(LoopDim {
                iterator: it,
                extent: state.point_extent_at(linalg_op, pos),
                kind: LoopKind::Point,
                iterator_type: linalg_op.iterator_types[it],
            });
        }

        let point_extents = (0..n)
            .map(|it| {
                if state.tile_sizes[it] == 0 {
                    linalg_op.loop_bounds[it]
                } else {
                    state.tile_sizes[it].min(linalg_op.loop_bounds[it])
                }
            })
            .collect();

        let fused_producers = state
            .fused_producers
            .iter()
            .map(|p| {
                let pop = self.module.op(*p).expect("producer belongs to module");
                FusedProducer {
                    op: *p,
                    kind: pop.kind,
                    flops: pop.iteration_points() as f64 * f64::from(pop.arith.total()),
                    input_bytes: pop
                        .input_types
                        .iter()
                        .map(mlir_rl_ir::TensorType::size_bytes)
                        .sum(),
                    intermediate_bytes: pop.result_type.size_bytes(),
                }
            })
            .collect();

        LoopNest {
            op,
            loops,
            point_extents,
            full_extents: linalg_op.loop_bounds.clone(),
            order: state.order.clone(),
            vectorized: state.vectorized,
            fused_producers,
        }
    }

    /// Lowers every live (non-fused-away) operation.
    pub fn lower_all(&self) -> Vec<LoopNest> {
        self.live_ops()
            .into_iter()
            .map(|op| self.lower(op))
            .collect()
    }
}

fn is_permutation(perm: &[usize], n: usize) -> bool {
    if perm.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for p in perm {
        if *p >= n || seen[*p] {
            return false;
        }
        seen[*p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_ir::ModuleBuilder;

    fn matmul_module() -> Module {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![256, 1024]);
        let w = b.argument("B", vec![1024, 512]);
        b.matmul(a, w);
        b.finish()
    }

    fn chain_module() -> Module {
        let mut b = ModuleBuilder::new("chain");
        let a = b.argument("A", vec![64, 128]);
        let w = b.argument("B", vec![128, 64]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    }

    #[test]
    fn untransformed_lowering_matches_loop_bounds() {
        let s = ScheduledModule::new(matmul_module());
        let nest = s.lower(OpId(0));
        assert_eq!(nest.depth(), 3);
        assert_eq!(nest.extents(), vec![256, 512, 1024]);
        assert_eq!(nest.num_tiles(), 1);
        assert_eq!(nest.parallel_degree(), 1);
        assert!(!nest.vectorized);
        assert_eq!(nest.innermost_iterator(), Some(2));
    }

    #[test]
    fn tiling_creates_tile_and_point_loops() {
        let mut s = ScheduledModule::new(matmul_module());
        s.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![8, 8, 0],
            },
        )
        .unwrap();
        let nest = s.lower(OpId(0));
        // 2 tile loops (256/8=32, 512/8=64) + 3 point loops (8, 8, 1024).
        assert_eq!(nest.extents(), vec![32, 64, 8, 8, 1024]);
        assert_eq!(nest.num_tiles(), 32 * 64);
        assert_eq!(nest.tile_iterations(), 8 * 8 * 1024);
        assert!(nest.is_tiled());
        assert_eq!(nest.parallel_degree(), 1);
    }

    #[test]
    fn tiled_parallelization_marks_parallel_tile_loops() {
        let mut s = ScheduledModule::new(matmul_module());
        s.apply(
            OpId(0),
            Transformation::TiledParallelization {
                tile_sizes: vec![8, 8, 0],
            },
        )
        .unwrap();
        let nest = s.lower(OpId(0));
        assert_eq!(nest.parallel_degree(), 32 * 64);
    }

    #[test]
    fn parallelization_of_reduction_outermost_is_rejected() {
        // Softmax-like op where we first interchange so a reduction loop is
        // outermost, then try to parallelize it.
        let mut b = ModuleBuilder::new("s");
        let x = b.argument("x", vec![128, 256]);
        b.softmax_2d(x);
        let mut s = ScheduledModule::new(b.finish());
        s.apply(
            OpId(0),
            Transformation::Interchange {
                permutation: vec![1, 0],
            },
        )
        .unwrap();
        let err = s
            .check(
                OpId(0),
                &Transformation::TiledParallelization {
                    tile_sizes: vec![8, 8],
                },
            )
            .unwrap_err();
        assert!(matches!(err, TransformError::ParallelizingReduction { .. }));
    }

    #[test]
    fn interchange_permutes_visible_bounds() {
        let mut s = ScheduledModule::new(matmul_module());
        // I(2,0,1): the loop previously innermost becomes outermost.
        s.apply(
            OpId(0),
            Transformation::Interchange {
                permutation: vec![2, 0, 1],
            },
        )
        .unwrap();
        let op = s.module().op(OpId(0)).unwrap().clone();
        assert_eq!(s.state(OpId(0)).visible_bounds(&op), vec![1024, 256, 512]);
        let nest = s.lower(OpId(0));
        assert_eq!(nest.extents(), vec![1024, 256, 512]);
        assert_eq!(nest.innermost_iterator(), Some(1));

        // A second interchange composes with the first.
        s.apply(
            OpId(0),
            Transformation::Interchange {
                permutation: vec![1, 0, 2],
            },
        )
        .unwrap();
        let op = s.module().op(OpId(0)).unwrap().clone();
        assert_eq!(s.state(OpId(0)).visible_bounds(&op), vec![256, 1024, 512]);
    }

    #[test]
    fn invalid_permutation_rejected() {
        let mut s = ScheduledModule::new(matmul_module());
        let err = s
            .apply(
                OpId(0),
                Transformation::Interchange {
                    permutation: vec![0, 0, 1],
                },
            )
            .unwrap_err();
        assert!(matches!(err, TransformError::InvalidPermutation { .. }));
        let err = s
            .apply(
                OpId(0),
                Transformation::Interchange {
                    permutation: vec![0, 1],
                },
            )
            .unwrap_err();
        assert!(matches!(err, TransformError::InvalidPermutation { .. }));
    }

    #[test]
    fn tile_size_validation() {
        let mut s = ScheduledModule::new(matmul_module());
        let err = s
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![8, 8],
                },
            )
            .unwrap_err();
        assert!(matches!(err, TransformError::TileSizeArity { .. }));
        let err = s
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![8, 8, 2048],
                },
            )
            .unwrap_err();
        assert!(matches!(err, TransformError::TileSizeTooLarge { .. }));
    }

    #[test]
    fn vectorization_requires_small_inner_loop() {
        let mut s = ScheduledModule::new(matmul_module());
        // Innermost loop is 1024 > 512, so vectorization is masked out.
        let err = s
            .check(OpId(0), &Transformation::Vectorization)
            .unwrap_err();
        assert!(matches!(
            err,
            TransformError::VectorizationPrecondition { .. }
        ));
        // After tiling the reduction loop down to 8, vectorization is legal.
        s.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![8, 8, 8],
            },
        )
        .unwrap();
        s.apply(OpId(0), Transformation::Vectorization).unwrap();
        assert!(s.lower(OpId(0)).vectorized);
        // Vectorization is terminal.
        let err = s
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![8, 8, 8],
                },
            )
            .unwrap_err();
        assert!(matches!(err, TransformError::AlreadyVectorized));
    }

    #[test]
    fn fusion_requires_untouched_producer() {
        let mut s = ScheduledModule::new(chain_module());
        let (mm, relu) = (OpId(0), OpId(1));
        // Fusing the matmul into the relu is legal.
        s.apply(
            relu,
            Transformation::TiledFusion {
                tile_sizes: vec![8, 8],
                producer: mm,
            },
        )
        .unwrap();
        assert_eq!(s.state(mm).fused_into, Some(relu));
        assert_eq!(s.live_ops(), vec![relu]);
        let nest = s.lower(relu);
        assert_eq!(nest.fused_producers.len(), 1);
        assert!(nest.fused_intermediate_bytes() > 0);
        // The fused producer can no longer be scheduled on its own.
        let err = s.apply(mm, Transformation::Vectorization).unwrap_err();
        assert!(matches!(err, TransformError::OperationFusedAway { .. }));
    }

    #[test]
    fn fusion_with_scheduled_producer_is_rejected() {
        let mut s = ScheduledModule::new(chain_module());
        let (mm, relu) = (OpId(0), OpId(1));
        s.apply(
            mm,
            Transformation::Tiling {
                tile_sizes: vec![8, 8, 8],
            },
        )
        .unwrap();
        let err = s
            .check(
                relu,
                &Transformation::TiledFusion {
                    tile_sizes: vec![8, 8],
                    producer: mm,
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            TransformError::ProducerAlreadyScheduled { .. }
        ));
    }

    #[test]
    fn fusion_without_producer_is_rejected() {
        let s = ScheduledModule::new(matmul_module());
        let err = s
            .check(
                OpId(0),
                &Transformation::TiledFusion {
                    tile_sizes: vec![8, 8, 0],
                    producer: OpId(0),
                },
            )
            .unwrap_err();
        assert!(matches!(err, TransformError::NoProducerToFuse { .. }));
    }

    #[test]
    fn schedule_length_is_bounded() {
        let mut s = ScheduledModule::with_max_schedule_len(matmul_module(), 2);
        s.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![8, 0, 0],
            },
        )
        .unwrap();
        s.apply(
            OpId(0),
            Transformation::Interchange {
                permutation: vec![1, 0, 2],
            },
        )
        .unwrap();
        let err = s
            .apply(
                OpId(0),
                Transformation::Tiling {
                    tile_sizes: vec![0, 8, 0],
                },
            )
            .unwrap_err();
        assert!(matches!(err, TransformError::ScheduleFull { .. }));
        // NoTransformation is always allowed to close the episode.
        s.apply(OpId(0), Transformation::NoTransformation).unwrap();
    }

    #[test]
    fn stop_freezes_the_operation_state() {
        let mut s = ScheduledModule::new(matmul_module());
        s.apply(OpId(0), Transformation::NoTransformation).unwrap();
        assert!(s.state(OpId(0)).is_terminated());
    }

    #[test]
    fn tiles_given_in_visible_order_after_interchange() {
        let mut s = ScheduledModule::new(matmul_module());
        // Put the reduction loop (bound 1024) outermost, then tile "level 0"
        // (which is now the reduction loop) with 4.
        s.apply(
            OpId(0),
            Transformation::Interchange {
                permutation: vec![2, 0, 1],
            },
        )
        .unwrap();
        s.apply(
            OpId(0),
            Transformation::Tiling {
                tile_sizes: vec![4, 0, 0],
            },
        )
        .unwrap();
        // The original iterator 2 (the k loop) should have tile size 4.
        assert_eq!(s.state(OpId(0)).tile_sizes, vec![0, 0, 4]);
        let nest = s.lower(OpId(0));
        assert_eq!(nest.point_extents, vec![256, 512, 4]);
    }

    #[test]
    fn is_permutation_helper() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[2, 0, 2], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 3, 1], 3));
    }
}
