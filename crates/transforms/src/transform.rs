//! The transformation (action) vocabulary of the environment.
//!
//! These are the six actions of Sec. IV-A of the paper: tiling, tiled
//! parallelization, tiled fusion, interchange, vectorization and the
//! terminal "no transformation".

use std::fmt;

use serde::{Deserialize, Serialize};

use mlir_rl_ir::OpId;

/// One loop-nest transformation with its parameters.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Transformation {
    /// `T(t1, ..., tN)`: tile loop level `i` with size `t_i`; `0` means the
    /// level is not tiled.
    Tiling {
        /// Tile size per loop level, outermost first.
        tile_sizes: Vec<u64>,
    },
    /// Tiling followed by parallelization of the outermost generated tile
    /// loops (lowered to `scf.forall`/OpenMP in MLIR). Selecting tile size 1
    /// for every level corresponds to plain parallelization.
    TiledParallelization {
        /// Tile size per loop level, outermost first.
        tile_sizes: Vec<u64>,
    },
    /// Tiling of the consumer followed by fusion of a producer at tile
    /// granularity.
    TiledFusion {
        /// Tile size per loop level of the consumer, outermost first.
        tile_sizes: Vec<u64>,
        /// The producer operation fused into the consumer's tile loops.
        producer: OpId,
    },
    /// Loop interchange; `permutation[i]` is the original loop placed at
    /// position `i` of the new loop order.
    Interchange {
        /// The permutation of loop levels.
        permutation: Vec<usize>,
    },
    /// Vectorize the innermost loop. Terminal: the Linalg op is rewritten
    /// into vector operations and no further Linalg transformation applies.
    Vectorization,
    /// Stop optimizing the current operation and move to the next one.
    NoTransformation,
}

/// The transformation categories, used by the multi-discrete action space
/// ("transformation selection" head) and the action-history encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransformationKind {
    /// Plain tiling.
    Tiling,
    /// Tiling + parallelization.
    TiledParallelization,
    /// Tiling + producer fusion.
    TiledFusion,
    /// Loop interchange.
    Interchange,
    /// Vectorization of the innermost loop.
    Vectorization,
    /// Terminal no-op.
    NoTransformation,
}

impl TransformationKind {
    /// All kinds in the order used by the transformation-selection head
    /// (a 6-way categorical distribution).
    pub const ALL: [TransformationKind; 6] = [
        TransformationKind::Tiling,
        TransformationKind::TiledParallelization,
        TransformationKind::TiledFusion,
        TransformationKind::Interchange,
        TransformationKind::Vectorization,
        TransformationKind::NoTransformation,
    ];

    /// Index in [`TransformationKind::ALL`].
    pub fn index(self) -> usize {
        TransformationKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("kind present in ALL")
    }

    /// The kind at a given index of [`TransformationKind::ALL`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 6`.
    pub fn from_index(index: usize) -> Self {
        TransformationKind::ALL[index]
    }

    /// Whether this kind carries tile-size parameters.
    pub fn is_tiled(self) -> bool {
        matches!(
            self,
            TransformationKind::Tiling
                | TransformationKind::TiledParallelization
                | TransformationKind::TiledFusion
        )
    }

    /// Whether selecting this kind ends the optimization of the current
    /// operation (Appendix A: vectorization and no-transformation are
    /// terminal).
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TransformationKind::Vectorization | TransformationKind::NoTransformation
        )
    }

    /// Short display name used in logs and benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            TransformationKind::Tiling => "tiling",
            TransformationKind::TiledParallelization => "tiled-parallelization",
            TransformationKind::TiledFusion => "tiled-fusion",
            TransformationKind::Interchange => "interchange",
            TransformationKind::Vectorization => "vectorization",
            TransformationKind::NoTransformation => "no-transformation",
        }
    }
}

impl fmt::Display for TransformationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Transformation {
    /// The category of this transformation.
    pub fn kind(&self) -> TransformationKind {
        match self {
            Transformation::Tiling { .. } => TransformationKind::Tiling,
            Transformation::TiledParallelization { .. } => TransformationKind::TiledParallelization,
            Transformation::TiledFusion { .. } => TransformationKind::TiledFusion,
            Transformation::Interchange { .. } => TransformationKind::Interchange,
            Transformation::Vectorization => TransformationKind::Vectorization,
            Transformation::NoTransformation => TransformationKind::NoTransformation,
        }
    }

    /// The tile sizes carried by tiled transformations, if any.
    pub fn tile_sizes(&self) -> Option<&[u64]> {
        match self {
            Transformation::Tiling { tile_sizes }
            | Transformation::TiledParallelization { tile_sizes }
            | Transformation::TiledFusion { tile_sizes, .. } => Some(tile_sizes),
            _ => None,
        }
    }

    /// The interchange permutation, if any.
    pub fn permutation(&self) -> Option<&[usize]> {
        match self {
            Transformation::Interchange { permutation } => Some(permutation),
            _ => None,
        }
    }
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transformation::Tiling { tile_sizes } => write!(f, "T{tile_sizes:?}"),
            Transformation::TiledParallelization { tile_sizes } => {
                write!(f, "TP{tile_sizes:?}")
            }
            Transformation::TiledFusion {
                tile_sizes,
                producer,
            } => write!(f, "TF{tile_sizes:?} with {producer}"),
            Transformation::Interchange { permutation } => write!(f, "I{permutation:?}"),
            Transformation::Vectorization => write!(f, "V"),
            Transformation::NoTransformation => write!(f, "stop"),
        }
    }
}

/// The ordered list of transformations applied to one operation.
pub type Schedule = Vec<Transformation>;

/// Size of the *flat* action space of the paper (Sec. IV-A):
/// `|A| = 3 * M^N + N! + 2`.
///
/// `n` is the number of loop levels, `m` the number of candidate tile sizes.
/// Values saturate at `u128::MAX` for large `n`.
pub fn flat_action_space_size(n: u32, m: u32) -> u128 {
    let tiled = 3u128.saturating_mul(u128::from(m).saturating_pow(n));
    let mut fact = 1u128;
    for i in 2..=u128::from(n) {
        fact = fact.saturating_mul(i);
    }
    tiled.saturating_add(fact).saturating_add(2)
}

/// Number of scalar decisions made by the multi-discrete formulation:
/// one 6-way transformation choice, `N` tile-size choices over `M`
/// candidates, and the interchange decision (`3N-6` enumerated candidates or
/// `N` level-pointer steps over `N` loops each).
pub fn multi_discrete_decision_count(n: u32, m: u32, level_pointers: bool) -> u128 {
    let interchange = if level_pointers {
        u128::from(n) * u128::from(n)
    } else {
        u128::from(3 * n).saturating_sub(6)
    };
    6 + u128::from(n) * u128::from(m) + interchange
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_roundtrip() {
        for (i, k) in TransformationKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(TransformationKind::from_index(i), *k);
        }
    }

    #[test]
    fn kind_properties() {
        assert!(TransformationKind::Tiling.is_tiled());
        assert!(TransformationKind::TiledFusion.is_tiled());
        assert!(!TransformationKind::Interchange.is_tiled());
        assert!(TransformationKind::Vectorization.is_terminal());
        assert!(TransformationKind::NoTransformation.is_terminal());
        assert!(!TransformationKind::Tiling.is_terminal());
    }

    #[test]
    fn transformation_accessors() {
        let t = Transformation::Tiling {
            tile_sizes: vec![8, 8, 0],
        };
        assert_eq!(t.kind(), TransformationKind::Tiling);
        assert_eq!(t.tile_sizes(), Some(&[8u64, 8, 0][..]));
        assert_eq!(t.permutation(), None);

        let i = Transformation::Interchange {
            permutation: vec![2, 0, 1],
        };
        assert_eq!(i.permutation(), Some(&[2usize, 0, 1][..]));
        assert_eq!(i.tile_sizes(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Transformation::Tiling {
                tile_sizes: vec![8, 8, 0]
            }
            .to_string(),
            "T[8, 8, 0]"
        );
        assert_eq!(Transformation::Vectorization.to_string(), "V");
        assert_eq!(Transformation::NoTransformation.to_string(), "stop");
        assert_eq!(TransformationKind::TiledFusion.to_string(), "tiled-fusion");
    }

    #[test]
    fn flat_action_space_matches_paper_formula() {
        // |A| = 3*M^N + N! + 2
        assert_eq!(flat_action_space_size(3, 8), 3 * 512 + 6 + 2);
        assert_eq!(flat_action_space_size(1, 2), 3 * 2 + 1 + 2);
        // N = 12, M = 8 (the paper's configuration) is astronomically large.
        assert!(flat_action_space_size(12, 8) > 200_000_000_000u128);
    }

    #[test]
    fn multi_discrete_is_much_smaller_than_flat() {
        let n = 12;
        let m = 8;
        let flat = flat_action_space_size(n, m);
        let md_lp = multi_discrete_decision_count(n, m, true);
        let md_enum = multi_discrete_decision_count(n, m, false);
        assert!(md_lp < 1000);
        assert!(md_enum < 1000);
        assert!(flat / md_lp > 1_000_000);
    }
}
