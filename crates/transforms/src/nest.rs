//! Lowered loop-nest form of a scheduled operation.
//!
//! After the schedule of an operation is applied, the operation is lowered
//! to a [`LoopNest`]: an explicit list of loops (tile loops, then point
//! loops), plus vectorization and fusion information. This is the form the
//! cost model consumes and the closest analogue of the `scf.forall` /
//! `scf.for` structure MLIR produces (Listing 2 of the paper).

use serde::{Deserialize, Serialize};

use mlir_rl_ir::{IteratorType, OpId, OpKind};

/// What a loop in the lowered nest iterates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopKind {
    /// An outer loop over tiles, executed in parallel (`scf.forall`).
    ParallelTile,
    /// An outer loop over tiles, executed sequentially.
    Tile,
    /// An intra-tile (point) loop.
    Point,
}

/// One loop of the lowered nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopDim {
    /// The original Linalg iterator this loop scans (0-based).
    pub iterator: usize,
    /// Trip count of the loop.
    pub extent: u64,
    /// Role of the loop in the nest.
    pub kind: LoopKind,
    /// Iterator type of the original loop level.
    pub iterator_type: IteratorType,
}

/// A producer operation fused into the consumer's tile loops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusedProducer {
    /// The fused producer operation.
    pub op: OpId,
    /// Kind of the producer (for reporting).
    pub kind: OpKind,
    /// Total scalar arithmetic of the producer (recomputed inside the
    /// consumer's tiles).
    pub flops: f64,
    /// Bytes of the producer's own inputs, still read from memory.
    pub input_bytes: u64,
    /// Bytes of the intermediate tensor that no longer round-trips through
    /// main memory thanks to fusion.
    pub intermediate_bytes: u64,
}

/// The lowered loop nest of one scheduled operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopNest {
    /// The operation this nest was lowered from.
    pub op: OpId,
    /// Loops, outermost first: tile loops (if any) followed by point loops.
    pub loops: Vec<LoopDim>,
    /// Point-loop extent per original iterator (equals the loop bound when
    /// the iterator is untiled).
    pub point_extents: Vec<u64>,
    /// Original loop bounds per iterator.
    pub full_extents: Vec<u64>,
    /// Current loop order: `order[i]` is the original iterator at nest
    /// position `i` (identity when no interchange was applied).
    pub order: Vec<usize>,
    /// Whether the innermost loop was vectorized.
    pub vectorized: bool,
    /// Producers fused into this nest.
    pub fused_producers: Vec<FusedProducer>,
}

impl LoopNest {
    /// Number of loops in the lowered nest (tile + point loops).
    pub fn depth(&self) -> usize {
        self.loops.len()
    }

    /// Total iteration points of the point loops (one tile's worth of work
    /// times the number of tiles equals the full domain).
    pub fn total_iterations(&self) -> u64 {
        self.full_extents.iter().product()
    }

    /// Iteration points inside one tile.
    pub fn tile_iterations(&self) -> u64 {
        self.point_extents.iter().product()
    }

    /// Number of tiles (product of tile-loop extents; 1 when untiled).
    pub fn num_tiles(&self) -> u64 {
        self.loops
            .iter()
            .filter(|l| l.kind != LoopKind::Point)
            .map(|l| l.extent)
            .product()
    }

    /// Degree of parallelism exposed by `scf.forall` loops (product of
    /// parallel tile-loop extents; 1 when nothing is parallelized).
    pub fn parallel_degree(&self) -> u64 {
        self.loops
            .iter()
            .filter(|l| l.kind == LoopKind::ParallelTile)
            .map(|l| l.extent)
            .product()
    }

    /// The original iterator scanned by the innermost point loop, if any.
    pub fn innermost_iterator(&self) -> Option<usize> {
        self.loops
            .iter()
            .rev()
            .find(|l| l.kind == LoopKind::Point)
            .map(|l| l.iterator)
    }

    /// Extent of the innermost point loop (1 if there are no loops).
    pub fn innermost_extent(&self) -> u64 {
        self.loops
            .iter()
            .rev()
            .find(|l| l.kind == LoopKind::Point)
            .map_or(1, |l| l.extent)
    }

    /// True if any loop level was actually tiled (a tile loop exists with
    /// more than one tile, or a point extent is smaller than the full
    /// extent).
    pub fn is_tiled(&self) -> bool {
        self.point_extents
            .iter()
            .zip(&self.full_extents)
            .any(|(p, f)| p < f)
    }

    /// Loop extents in nest order, outermost first (useful for display).
    pub fn extents(&self) -> Vec<u64> {
        self.loops.iter().map(|l| l.extent).collect()
    }

    /// Sum of intermediate bytes saved by fusion.
    pub fn fused_intermediate_bytes(&self) -> u64 {
        self.fused_producers
            .iter()
            .map(|p| p.intermediate_bytes)
            .sum()
    }

    /// Total extra compute contributed by fused producers.
    pub fn fused_flops(&self) -> f64 {
        self.fused_producers.iter().map(|p| p.flops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_nest() -> LoopNest {
        LoopNest {
            op: OpId(0),
            loops: vec![
                LoopDim {
                    iterator: 0,
                    extent: 32,
                    kind: LoopKind::ParallelTile,
                    iterator_type: IteratorType::Parallel,
                },
                LoopDim {
                    iterator: 1,
                    extent: 64,
                    kind: LoopKind::Tile,
                    iterator_type: IteratorType::Parallel,
                },
                LoopDim {
                    iterator: 0,
                    extent: 8,
                    kind: LoopKind::Point,
                    iterator_type: IteratorType::Parallel,
                },
                LoopDim {
                    iterator: 1,
                    extent: 8,
                    kind: LoopKind::Point,
                    iterator_type: IteratorType::Parallel,
                },
                LoopDim {
                    iterator: 2,
                    extent: 1024,
                    kind: LoopKind::Point,
                    iterator_type: IteratorType::Reduction,
                },
            ],
            point_extents: vec![8, 8, 1024],
            full_extents: vec![256, 512, 1024],
            order: vec![0, 1, 2],
            vectorized: true,
            fused_producers: vec![FusedProducer {
                op: OpId(1),
                kind: OpKind::Relu,
                flops: 1000.0,
                input_bytes: 4096,
                intermediate_bytes: 2048,
            }],
        }
    }

    #[test]
    fn nest_queries() {
        let n = sample_nest();
        assert_eq!(n.depth(), 5);
        assert_eq!(n.total_iterations(), 256 * 512 * 1024);
        assert_eq!(n.tile_iterations(), 8 * 8 * 1024);
        assert_eq!(n.num_tiles(), 32 * 64);
        assert_eq!(n.parallel_degree(), 32);
        assert_eq!(n.innermost_iterator(), Some(2));
        assert_eq!(n.innermost_extent(), 1024);
        assert!(n.is_tiled());
        assert!(n.vectorized);
        assert_eq!(n.fused_intermediate_bytes(), 2048);
        assert_eq!(n.fused_flops(), 1000.0);
        assert_eq!(n.extents(), vec![32, 64, 8, 8, 1024]);
    }

    #[test]
    fn untiled_nest_has_single_tile() {
        let n = LoopNest {
            op: OpId(0),
            loops: vec![LoopDim {
                iterator: 0,
                extent: 128,
                kind: LoopKind::Point,
                iterator_type: IteratorType::Parallel,
            }],
            point_extents: vec![128],
            full_extents: vec![128],
            order: vec![0],
            vectorized: false,
            fused_producers: vec![],
        };
        assert_eq!(n.num_tiles(), 1);
        assert_eq!(n.parallel_degree(), 1);
        assert!(!n.is_tiled());
        assert_eq!(n.tile_iterations(), 128);
    }
}
