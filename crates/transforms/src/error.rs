//! Errors reported by transformation legality checks and application.

use std::fmt;

use mlir_rl_ir::OpId;

/// Why a transformation could not be applied to an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The tile-size vector length does not match the number of loops.
    TileSizeArity {
        /// Number of loops of the operation.
        loops: usize,
        /// Number of tile sizes provided.
        provided: usize,
    },
    /// A tile size exceeds the loop bound it applies to.
    TileSizeTooLarge {
        /// The loop level.
        level: usize,
        /// The requested tile size.
        tile: u64,
        /// The loop bound.
        bound: u64,
    },
    /// The interchange permutation is not a permutation of the loop levels.
    InvalidPermutation {
        /// The offending permutation.
        permutation: Vec<usize>,
        /// Number of loops of the operation.
        loops: usize,
    },
    /// Vectorization pre-conditions are not satisfied.
    VectorizationPrecondition {
        /// Human-readable reason.
        reason: String,
    },
    /// Parallelization would parallelize a reduction loop.
    ParallelizingReduction {
        /// The reduction loop level.
        level: usize,
    },
    /// Fusion was requested but the operation has no producer to fuse.
    NoProducerToFuse {
        /// The consumer operation.
        op: OpId,
    },
    /// Fusion was requested with a producer that is not a producer of the op.
    NotAProducer {
        /// The consumer operation.
        op: OpId,
        /// The candidate producer.
        producer: OpId,
    },
    /// The producer has already been transformed and can no longer be fused
    /// (Linalg fusion has limited ability to fuse a modified producer).
    ProducerAlreadyScheduled {
        /// The producer operation.
        producer: OpId,
    },
    /// The operation was already vectorized; vectorization is terminal and
    /// no further Linalg transformation can be applied.
    AlreadyVectorized,
    /// The schedule has reached the maximum transformation-sequence length.
    ScheduleFull {
        /// The configured maximum length (τ).
        max_len: usize,
    },
    /// The operation was already fused into a consumer and can no longer be
    /// scheduled on its own.
    OperationFusedAway {
        /// The operation.
        op: OpId,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::TileSizeArity { loops, provided } => write!(
                f,
                "tile-size vector has {provided} entries but the operation has {loops} loops"
            ),
            TransformError::TileSizeTooLarge { level, tile, bound } => write!(
                f,
                "tile size {tile} at loop level {level} exceeds the loop bound {bound}"
            ),
            TransformError::InvalidPermutation { permutation, loops } => write!(
                f,
                "interchange {permutation:?} is not a permutation of {loops} loop levels"
            ),
            TransformError::VectorizationPrecondition { reason } => {
                write!(f, "vectorization pre-condition failed: {reason}")
            }
            TransformError::ParallelizingReduction { level } => write!(
                f,
                "cannot parallelize loop level {level}: it carries a reduction"
            ),
            TransformError::NoProducerToFuse { op } => {
                write!(f, "operation {op} has no producer to fuse")
            }
            TransformError::NotAProducer { op, producer } => {
                write!(f, "{producer} is not a producer of {op}")
            }
            TransformError::ProducerAlreadyScheduled { producer } => write!(
                f,
                "producer {producer} was already transformed and can no longer be fused"
            ),
            TransformError::AlreadyVectorized => {
                write!(
                    f,
                    "operation was already vectorized; no further transformation is possible"
                )
            }
            TransformError::ScheduleFull { max_len } => {
                write!(
                    f,
                    "schedule already has the maximum of {max_len} transformations"
                )
            }
            TransformError::OperationFusedAway { op } => {
                write!(f, "operation {op} was fused into its consumer")
            }
        }
    }
}

impl std::error::Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_relevant_numbers() {
        let e = TransformError::TileSizeTooLarge {
            level: 2,
            tile: 64,
            bound: 32,
        };
        let s = e.to_string();
        assert!(s.contains("64") && s.contains("32") && s.contains('2'));

        let e = TransformError::InvalidPermutation {
            permutation: vec![0, 0, 1],
            loops: 3,
        };
        assert!(e.to_string().contains("[0, 0, 1]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TransformError>();
    }
}
