//! # mlir-rl-transforms
//!
//! Loop-nest transformations over the miniature Linalg IR: tiling, tiled
//! parallelization, tiled fusion, loop interchange and vectorization — the
//! action vocabulary of the MLIR RL environment (Sec. IV-A of the paper) —
//! together with legality checking and lowering of scheduled operations to
//! explicit loop nests for cost evaluation.
//!
//! ## Example
//!
//! ```
//! use mlir_rl_ir::{ModuleBuilder, OpId};
//! use mlir_rl_transforms::{ScheduledModule, Transformation};
//!
//! let mut b = ModuleBuilder::new("m");
//! let a = b.argument("A", vec![256, 1024]);
//! let w = b.argument("B", vec![1024, 512]);
//! b.matmul(a, w);
//!
//! let mut scheduled = ScheduledModule::new(b.finish());
//! scheduled.apply(OpId(0), Transformation::TiledParallelization { tile_sizes: vec![8, 8, 0] })?;
//! let nest = scheduled.lower(OpId(0));
//! assert_eq!(nest.parallel_degree(), 32 * 64);
//! # Ok::<(), mlir_rl_transforms::TransformError>(())
//! ```

#![warn(missing_docs)]

pub mod apply;
pub mod error;
pub mod nest;
pub mod transform;

pub use apply::{
    OpScheduleState, ScheduledModule, DEFAULT_MAX_SCHEDULE_LEN, MAX_VECTORIZABLE_INNER_EXTENT,
};
pub use error::TransformError;
pub use nest::{FusedProducer, LoopDim, LoopKind, LoopNest};
pub use transform::{
    flat_action_space_size, multi_discrete_decision_count, Schedule, Transformation,
    TransformationKind,
};
