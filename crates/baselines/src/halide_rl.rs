//! The Halide RL analogue (Pecenin et al., Fig. 5).
//!
//! Halide RL selects schedules from an *initial set of user-provided
//! directives*: it is semi-automatic and its action set is much narrower
//! than MLIR RL's (no loop interchange, no producer fusion, tiling limited
//! to the two outermost loops). We substitute the behaviour of its
//! converged agent by exhaustively scoring that small directive set with the
//! cost model and keeping the best combination per operation — an upper
//! bound on what the restricted RL agent can find, which keeps the
//! comparison conservative.

use mlir_rl_costmodel::{CodegenQuality, CostModel, MachineModel};
use mlir_rl_ir::{IteratorType, Module};
use mlir_rl_transforms::{ScheduledModule, Transformation};

use crate::{Baseline, BaselineResult};

/// The restricted-directive-set scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct HalideRl {
    /// Tile sizes the user-style directives may request for the two
    /// outermost loops.
    pub tile_choices: Vec<u64>,
    /// Machine used to score directive combinations.
    pub machine: MachineModel,
}

impl HalideRl {
    /// Creates the baseline with the directive set used in the evaluation
    /// (tiles of 16/32/64 on the outer two loops, optional parallelization
    /// and vectorization).
    pub fn new() -> Self {
        Self {
            tile_choices: vec![16, 32, 64],
            machine: MachineModel::default(),
        }
    }
}

impl Default for HalideRl {
    fn default() -> Self {
        Self::new()
    }
}

impl Baseline for HalideRl {
    fn name(&self) -> String {
        "Halide RL".to_string()
    }

    fn optimize(&self, module: &Module) -> BaselineResult {
        let cost = CostModel::with_quality(self.machine.clone(), CodegenQuality::Generic);
        let mut best = ScheduledModule::new(module.clone());
        let mut best_time = cost.estimate_scheduled(&best).total_s;

        // Enumerate directive combinations per operation greedily (operation
        // by operation, keeping the best so far), which matches the
        // sequential decision process of the original system.
        for op in module.op_order() {
            let Ok(linalg_op) = module.op(op) else {
                continue;
            };
            let n = linalg_op.num_loops();
            let mut candidates: Vec<Vec<Transformation>> = vec![vec![]];
            for &tile in &self.tile_choices {
                // Tile (and parallelize) the up-to-two outermost parallel
                // loops; deeper loops are outside the directive set.
                let mut tiles = vec![0u64; n];
                for (i, t) in tiles.iter_mut().enumerate().take(2) {
                    if linalg_op.iterator_types[i] == IteratorType::Parallel
                        && linalg_op.loop_bounds[i] >= tile
                    {
                        *t = tile;
                    }
                }
                if tiles.iter().all(|t| *t == 0) {
                    continue;
                }
                candidates.push(vec![Transformation::Tiling {
                    tile_sizes: tiles.clone(),
                }]);
                candidates.push(vec![Transformation::TiledParallelization {
                    tile_sizes: tiles.clone(),
                }]);
                candidates.push(vec![
                    Transformation::TiledParallelization { tile_sizes: tiles },
                    Transformation::Vectorization,
                ]);
            }
            candidates.push(vec![Transformation::Vectorization]);

            let mut best_for_op: Option<(f64, ScheduledModule)> = None;
            for candidate in candidates {
                let mut trial = best.clone();
                let mut ok = true;
                for t in candidate {
                    if trial.apply(op, t).is_err() {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                let time = cost.estimate_scheduled(&trial).total_s;
                if best_for_op.as_ref().map(|(t, _)| time < *t).unwrap_or(true) {
                    best_for_op = Some((time, trial));
                }
            }
            if let Some((time, schedule)) = best_for_op {
                if time <= best_time {
                    best_time = time;
                    best = schedule;
                }
            }
        }

        BaselineResult {
            name: self.name(),
            scheduled: best,
            quality: CodegenQuality::Generic,
            extra_overhead_s: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup_over_mlir;
    use mlir_rl_ir::{ModuleBuilder, OpId};

    fn relu_module() -> Module {
        let mut b = ModuleBuilder::new("r");
        let x = b.argument("x", vec![256, 3136]);
        b.relu(x);
        b.finish()
    }

    #[test]
    fn picks_a_profitable_directive_combination() {
        let module = relu_module();
        let result = HalideRl::new().optimize(&module);
        let machine = MachineModel::default();
        assert!(speedup_over_mlir(&result, &module, &machine) > 1.0);
        // The chosen schedule only uses the restricted directive set: no
        // interchange, no fusion.
        let state = result.scheduled.state(OpId(0));
        assert!(state.fused_producers.is_empty());
        assert_eq!(
            state.order,
            vec![0, 1],
            "no interchange in the directive set"
        );
    }

    #[test]
    fn never_makes_the_code_slower() {
        // Even for a tiny op where every directive hurts, the baseline keeps
        // the untransformed schedule.
        let mut b = ModuleBuilder::new("tiny");
        let x = b.argument("x", vec![8, 8]);
        b.relu(x);
        let module = b.finish();
        let machine = MachineModel::default();
        let result = HalideRl::new().optimize(&module);
        let s = speedup_over_mlir(&result, &module, &machine);
        assert!(s >= 0.999, "restricted search must not regress: {s}");
    }

    #[test]
    fn deep_reduction_nests_limit_the_directive_set() {
        // On an LQCD-style nest whose outer loops are parallel but whose
        // performance depends on inner reductions, the restricted set can
        // only touch the two outermost loops.
        let module = mlir_rl_workloads::lqcd::lqcd_kernel(16, 10, 3, 3);
        let result = HalideRl::new().optimize(&module);
        let state = result.scheduled.state(OpId(0));
        assert!(state.tile_sizes[2..].iter().all(|t| *t == 0));
    }
}
