//! The PyTorch / PyTorch-compiler analogue: an expert-library scheduler.
//!
//! PyTorch dispatches to hand-tuned oneDNN/MKL kernels; the PyTorch
//! compiler additionally removes Python/dispatch overhead and fuses
//! elementwise chains. Neither exists in this Rust reproduction, so the
//! substitution (documented in `DESIGN.md`) is: apply a near-optimal
//! schedule to every operation (cache tiling, outer-loop parallelization,
//! vectorization) and evaluate it with the *expert-kernel* code-generation
//! quality of the cost model. The eager variant pays a fixed per-operator
//! dispatch overhead and never fuses; the compiled variant fuses elementwise
//! consumers into their producers first.

use mlir_rl_costmodel::CodegenQuality;
use mlir_rl_ir::{IteratorType, Module, OpId};
use mlir_rl_transforms::{ScheduledModule, Transformation};

use crate::{Baseline, BaselineResult};

/// Dispatch overhead of one eager-mode operator launch (framework + memory
/// allocator), in seconds.
const EAGER_DISPATCH_OVERHEAD_S: f64 = 20.0e-6;

/// Which vendor execution mode to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VendorMode {
    /// PyTorch eager: per-operator dispatch, no cross-operator fusion.
    Eager,
    /// PyTorch compiler (`torch.compile` / `torch.jit`): no dispatch
    /// overhead, elementwise chains fused into their producers.
    Compiled,
}

/// The expert-library baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VendorLibrary {
    mode: VendorMode,
}

impl VendorLibrary {
    /// Creates the baseline in the given mode.
    pub fn new(mode: VendorMode) -> Self {
        Self { mode }
    }

    /// The execution mode.
    pub fn mode(&self) -> VendorMode {
        self.mode
    }
}

/// Applies a near-optimal generic schedule to one operation: parallelize the
/// parallel dimensions with cache-sized tiles, tile the reduction
/// dimensions, and vectorize when legal.
pub(crate) fn expert_schedule_op(scheduled: &mut ScheduledModule, op: OpId) {
    let Ok(linalg_op) = scheduled.module().op(op) else {
        return;
    };
    if scheduled.state(op).is_terminated() {
        return;
    }
    let n = linalg_op.num_loops();
    let bounds = linalg_op.loop_bounds.clone();
    let types = linalg_op.iterator_types.clone();

    let tile_for = |bound: u64| -> u64 {
        for candidate in [64u64, 32, 16, 8, 4] {
            if candidate <= bound {
                return candidate;
            }
        }
        0
    };

    // 1. Tiled parallelization over the parallel dimensions.
    let parallel_tiles: Vec<u64> = (0..n)
        .map(|i| {
            if types[i] == IteratorType::Parallel && bounds[i] >= 4 {
                tile_for(bounds[i])
            } else {
                0
            }
        })
        .collect();
    if parallel_tiles.iter().any(|t| *t > 0) {
        let _ = scheduled.apply(
            op,
            Transformation::TiledParallelization {
                tile_sizes: parallel_tiles,
            },
        );
    }

    // 2. Cache tiling of the reduction dimensions.
    let reduction_tiles: Vec<u64> = (0..n)
        .map(|i| {
            if types[i] == IteratorType::Reduction && bounds[i] > 64 {
                64
            } else {
                0
            }
        })
        .collect();
    if reduction_tiles.iter().any(|t| *t > 0) {
        let _ = scheduled.apply(
            op,
            Transformation::Tiling {
                tile_sizes: reduction_tiles,
            },
        );
    }

    // 3. Vectorize if the preconditions (including the innermost-extent
    //    limit) hold after tiling.
    let _ = scheduled.apply(op, Transformation::Vectorization);
}

impl Baseline for VendorLibrary {
    fn name(&self) -> String {
        match self.mode {
            VendorMode::Eager => "PyTorch".to_string(),
            VendorMode::Compiled => "PyTorch compiler".to_string(),
        }
    }

    fn optimize(&self, module: &Module) -> BaselineResult {
        let mut scheduled = ScheduledModule::new(module.clone());
        let reverse = module.reverse_order();

        // The compiled variant fuses elementwise consumers into their
        // producers (kernel fusion), visiting consumers first so producers
        // are still untouched.
        if self.mode == VendorMode::Compiled {
            for op in &reverse {
                let Ok(linalg_op) = module.op(*op) else {
                    continue;
                };
                if !linalg_op.kind.is_elementwise() {
                    continue;
                }
                let Some(producer) = module.last_producer(*op) else {
                    continue;
                };
                let n = linalg_op.num_loops();
                let tiles: Vec<u64> = linalg_op
                    .loop_bounds
                    .iter()
                    .map(|b| if *b >= 32 { 32 } else { 0 })
                    .collect();
                if tiles.iter().all(|t| *t == 0) {
                    continue;
                }
                let _ = scheduled.apply(
                    *op,
                    Transformation::TiledFusion {
                        tile_sizes: tiles[..n].to_vec(),
                        producer,
                    },
                );
            }
        }

        for op in module.op_order() {
            if scheduled.state(op).fused_into.is_none() {
                expert_schedule_op(&mut scheduled, op);
            }
        }

        let extra_overhead_s = match self.mode {
            VendorMode::Eager => module.ops().len() as f64 * EAGER_DISPATCH_OVERHEAD_S,
            VendorMode::Compiled => 0.0,
        };
        BaselineResult {
            name: self.name(),
            scheduled,
            quality: CodegenQuality::ExpertKernel,
            extra_overhead_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, speedup_over_mlir};
    use mlir_rl_costmodel::MachineModel;
    use mlir_rl_ir::ModuleBuilder;

    fn matmul_relu() -> Module {
        let mut b = ModuleBuilder::new("chain");
        let a = b.argument("A", vec![512, 1024]);
        let w = b.argument("B", vec![1024, 256]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    }

    #[test]
    fn expert_schedule_parallelizes_and_vectorizes() {
        // Eager mode never fuses, so the matmul keeps its own schedule.
        let module = matmul_relu();
        let result = VendorLibrary::new(VendorMode::Eager).optimize(&module);
        let state = result.scheduled.state(OpId(0));
        assert!(state.parallelized, "matmul should be parallelized");
        assert!(state.tile_sizes.iter().any(|t| *t > 0));
        assert!(state.vectorized, "matmul should be vectorized after tiling");
        assert_eq!(result.quality, CodegenQuality::ExpertKernel);
    }

    #[test]
    fn compiled_mode_fuses_elementwise_consumers() {
        let module = matmul_relu();
        let compiled = VendorLibrary::new(VendorMode::Compiled).optimize(&module);
        // The relu (op 1) fused its producer matmul.
        assert_eq!(compiled.scheduled.state(OpId(0)).fused_into, Some(OpId(1)));

        let eager = VendorLibrary::new(VendorMode::Eager).optimize(&module);
        assert_eq!(eager.scheduled.state(OpId(0)).fused_into, None);
        assert!(eager.extra_overhead_s > 0.0);
        assert_eq!(compiled.extra_overhead_s, 0.0);
    }

    #[test]
    fn compiled_is_at_least_as_fast_as_eager() {
        let module = matmul_relu();
        let machine = MachineModel::default();
        let eager = evaluate(
            &VendorLibrary::new(VendorMode::Eager).optimize(&module),
            &machine,
        );
        let compiled = evaluate(
            &VendorLibrary::new(VendorMode::Compiled).optimize(&module),
            &machine,
        );
        assert!(compiled <= eager);
    }

    #[test]
    fn vendor_speedup_over_baseline_is_large_for_compute_bound_ops() {
        let module = matmul_relu();
        let machine = MachineModel::default();
        let result = VendorLibrary::new(VendorMode::Compiled).optimize(&module);
        let s = speedup_over_mlir(&result, &module, &machine);
        assert!(s > 10.0, "expert kernels should be far ahead, got {s}");
    }
}
