//! The Halide autoscheduler analogue (Mullapudi et al., Table IV).
//!
//! The Mullapudi autoscheduler greedily groups pipeline stages (fusing
//! cheap stages into their consumers), then tiles each group with a fixed
//! heuristic that targets the last-level cache and parallelizes the
//! outermost tiled loops. It does not search: tile sizes come from a static
//! rule, loop order is left untouched, and vectorization is applied to the
//! innermost dimension when possible. The schedule executes with generic
//! (compiler-generated) code quality, like MLIR RL's output.

use mlir_rl_costmodel::CodegenQuality;
use mlir_rl_ir::{IteratorType, Module};
use mlir_rl_transforms::{ScheduledModule, Transformation};

use crate::{Baseline, BaselineResult};

/// The greedy grouping + fixed-tiling autoscheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MullapudiAutoscheduler {
    /// Tile size used for every tiled dimension (the published heuristic
    /// targets a fixed per-group working set; 32 approximates its choice on
    /// the evaluation machine).
    pub tile_size: u64,
}

impl MullapudiAutoscheduler {
    /// Creates the autoscheduler with its default tile size of 32.
    pub fn new() -> Self {
        Self { tile_size: 32 }
    }
}

impl Baseline for MullapudiAutoscheduler {
    fn name(&self) -> String {
        "Halide autoscheduler (Mullapudi)".to_string()
    }

    fn optimize(&self, module: &Module) -> BaselineResult {
        let mut scheduled = ScheduledModule::new(module.clone());

        // 1. Greedy grouping: fuse cheap (elementwise) stages into their
        //    consumers, visiting consumers first.
        for op in module.reverse_order() {
            let Ok(linalg_op) = module.op(op) else {
                continue;
            };
            let Some(producer) = module.last_producer(op) else {
                continue;
            };
            let Ok(producer_op) = module.op(producer) else {
                continue;
            };
            // Group only when the producer is cheap relative to the consumer
            // (the published inlining criterion uses arithmetic intensity).
            if !producer_op.kind.is_elementwise() {
                continue;
            }
            let n = linalg_op.num_loops();
            let tiles: Vec<u64> = linalg_op
                .loop_bounds
                .iter()
                .take(n)
                .map(|b| {
                    if *b >= self.tile_size {
                        self.tile_size
                    } else {
                        0
                    }
                })
                .collect();
            if tiles.iter().all(|t| *t == 0) {
                continue;
            }
            let _ = scheduled.apply(
                op,
                Transformation::TiledFusion {
                    tile_sizes: tiles,
                    producer,
                },
            );
        }

        // 2. Fixed tiling + outer parallelization + vectorization per group.
        for op in module.op_order() {
            if scheduled.state(op).fused_into.is_some() || scheduled.state(op).is_terminated() {
                continue;
            }
            let Ok(linalg_op) = module.op(op) else {
                continue;
            };
            let n = linalg_op.num_loops();
            let tiles: Vec<u64> = (0..n)
                .map(|i| {
                    if linalg_op.iterator_types[i] == IteratorType::Parallel
                        && linalg_op.loop_bounds[i] >= self.tile_size
                    {
                        self.tile_size
                    } else {
                        0
                    }
                })
                .collect();
            if tiles.iter().any(|t| *t > 0) {
                let _ = scheduled.apply(
                    op,
                    Transformation::TiledParallelization { tile_sizes: tiles },
                );
            }
            let _ = scheduled.apply(op, Transformation::Vectorization);
        }

        BaselineResult {
            name: self.name(),
            scheduled,
            quality: CodegenQuality::Generic,
            extra_overhead_s: 0.0,
        }
    }
}

/// Convenience: the schedule state of the first live op (test helper).
#[doc(hidden)]
pub fn first_live_state(result: &BaselineResult) -> &mlir_rl_transforms::OpScheduleState {
    let op = result.scheduled.live_ops()[0];
    result.scheduled.state(op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedup_over_mlir;
    use mlir_rl_costmodel::MachineModel;
    use mlir_rl_ir::{ModuleBuilder, OpId};
    use mlir_rl_workloads::LqcdApplication;

    #[test]
    fn tiles_and_parallelizes_a_matmul() {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![256, 256]);
        let w = b.argument("B", vec![256, 256]);
        b.matmul(a, w);
        let module = b.finish();
        let result = MullapudiAutoscheduler::new().optimize(&module);
        let state = result.scheduled.state(OpId(0));
        assert!(state.parallelized);
        // Only the parallel dims are tiled by the heuristic.
        assert_eq!(state.tile_sizes, vec![32, 32, 0]);
        assert_eq!(result.quality, CodegenQuality::Generic);
    }

    #[test]
    fn groups_elementwise_producers() {
        let mut b = ModuleBuilder::new("chain");
        let x = b.argument("x", vec![256, 256]);
        let r = b.relu(x);
        let y = b.argument("y", vec![256, 256]);
        b.add(r, y);
        let module = b.finish();
        let result = MullapudiAutoscheduler::new().optimize(&module);
        assert_eq!(result.scheduled.state(OpId(0)).fused_into, Some(OpId(1)));
    }

    #[test]
    fn speeds_up_lqcd_applications_over_the_baseline() {
        let machine = MachineModel::default();
        for app in LqcdApplication::ALL {
            let module = app.module();
            let result = MullapudiAutoscheduler::new().optimize(&module);
            let s = speedup_over_mlir(&result, &module, &machine);
            assert!(
                s > 1.0,
                "{} should be faster than the baseline on {}, got {s}",
                result.name,
                app.name()
            );
        }
    }
}
