//! # mlir-rl-baselines
//!
//! The comparison systems of the paper's evaluation, re-implemented over the
//! same IR and cost model as MLIR RL:
//!
//! * [`vendor`] — the PyTorch / PyTorch-compiler analogue: an "expert
//!   library" scheduler evaluated with hand-tuned-kernel efficiency
//!   (oneDNN-style register tiling is what makes these frameworks win on
//!   Matmul and Conv2D in Fig. 5 and Table III);
//! * [`mullapudi`] — the Halide autoscheduler analogue: greedy stage
//!   grouping plus fixed tiling/parallelization heuristics (Table IV);
//! * [`halide_rl`] — the Halide RL analogue: a schedule chosen from a
//!   restricted, user-directive-style action set (no interchange, no
//!   fusion), standing in for the semi-automatic RL system of Pecenin et
//!   al. (Fig. 5);
//! * the untransformed MLIR baseline every speedup is measured against.

#![warn(missing_docs)]

pub mod halide_rl;
pub mod mullapudi;
pub mod vendor;

use mlir_rl_costmodel::{CodegenQuality, CostModel, MachineModel};
use mlir_rl_ir::Module;
use mlir_rl_transforms::ScheduledModule;

pub use halide_rl::HalideRl;
pub use mullapudi::MullapudiAutoscheduler;
pub use vendor::{VendorLibrary, VendorMode};

/// The result of running a baseline scheduler on a module.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Name of the baseline (used in tables and figures).
    pub name: String,
    /// The schedule the baseline produced.
    pub scheduled: ScheduledModule,
    /// The code-generation quality the schedule executes with.
    pub quality: CodegenQuality,
    /// Fixed per-run overhead added on top of the modelled time (e.g. eager
    /// per-operator dispatch).
    pub extra_overhead_s: f64,
}

/// A baseline optimizer that produces a schedule for a module.
pub trait Baseline {
    /// Display name of the baseline.
    fn name(&self) -> String;
    /// Optimizes a module.
    fn optimize(&self, module: &Module) -> BaselineResult;
}

/// Execution time of a baseline result on the given machine.
pub fn evaluate(result: &BaselineResult, machine: &MachineModel) -> f64 {
    let cm = CostModel::with_quality(machine.clone(), result.quality);
    cm.estimate_scheduled(&result.scheduled).total_s + result.extra_overhead_s
}

/// Execution time of the untransformed MLIR baseline (generic code
/// generation, no loop-level optimization) for a module.
pub fn mlir_baseline_time(module: &Module, machine: &MachineModel) -> f64 {
    CostModel::with_quality(machine.clone(), CodegenQuality::Generic)
        .estimate_baseline(module)
        .total_s
}

/// Speedup of a baseline result over the untransformed MLIR baseline.
pub fn speedup_over_mlir(result: &BaselineResult, module: &Module, machine: &MachineModel) -> f64 {
    mlir_baseline_time(module, machine) / evaluate(result, machine).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_ir::ModuleBuilder;

    fn matmul() -> Module {
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![512, 512]);
        let w = b.argument("B", vec![512, 512]);
        b.matmul(a, w);
        b.finish()
    }

    #[test]
    fn all_baselines_beat_the_untransformed_code_on_matmul() {
        let module = matmul();
        let machine = MachineModel::default();
        let baselines: Vec<Box<dyn Baseline>> = vec![
            Box::new(VendorLibrary::new(VendorMode::Eager)),
            Box::new(VendorLibrary::new(VendorMode::Compiled)),
            Box::new(MullapudiAutoscheduler::new()),
            Box::new(HalideRl::new()),
        ];
        for baseline in &baselines {
            let result = baseline.optimize(&module);
            let speedup = speedup_over_mlir(&result, &module, &machine);
            assert!(
                speedup > 1.0,
                "{} should beat the unoptimized baseline, got {speedup}",
                baseline.name()
            );
        }
    }

    #[test]
    fn vendor_library_wins_on_matmul() {
        // The expert-kernel baseline should dominate the generic-codegen
        // baselines on compute-bound matmul, as in Fig. 5.
        let module = matmul();
        let machine = MachineModel::default();
        let vendor = VendorLibrary::new(VendorMode::Compiled).optimize(&module);
        let halide = HalideRl::new().optimize(&module);
        assert!(
            speedup_over_mlir(&vendor, &module, &machine)
                > speedup_over_mlir(&halide, &module, &machine)
        );
    }
}
