//! Report structures used by the experiment harness: speedup tables
//! (Tables III and IV, the per-operator averages behind Fig. 5) and series
//! (the training curves of Figs. 6 and 7).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A table of speedups: one row per benchmark, one column per system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupTable {
    /// Table title (e.g. "Table III: neural-network models").
    pub title: String,
    /// Column headers (system names).
    pub columns: Vec<String>,
    /// Rows: benchmark name and one value per column (`NaN` = not
    /// evaluated).
    pub rows: Vec<(String, Vec<f64>)>,
}

impl SpeedupTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: Vec<String>) -> Self {
        Self {
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values does not match the number of columns.
    pub fn push_row(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match the column count"
        );
        self.rows.push((name.into(), values));
    }

    /// Geometric mean of each column (ignoring NaN entries).
    pub fn column_geomeans(&self) -> Vec<f64> {
        (0..self.columns.len())
            .map(|c| {
                let vals: Vec<f64> = self
                    .rows
                    .iter()
                    .map(|(_, v)| v[c])
                    .filter(|v| v.is_finite() && *v > 0.0)
                    .collect();
                if vals.is_empty() {
                    f64::NAN
                } else {
                    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
                }
            })
            .collect()
    }

    /// Serializes the table to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        json::field(&mut out, 1, "title", json::string(&self.title));
        out.push_str(",\n");
        json::field(
            &mut out,
            1,
            "columns",
            json::array(self.columns.iter().map(|c| json::string(c))),
        );
        out.push_str(",\n");
        let rows = self.rows.iter().map(|(name, values)| {
            format!(
                "[{}, {}]",
                json::string(name),
                json::array(values.iter().map(|v| json::number(*v)))
            )
        });
        json::field(&mut out, 1, "rows", json::array(rows));
        out.push_str("\n}");
        out
    }
}

/// Hand-rolled JSON emission (the offline `serde` stand-in performs no real
/// serialization, so report types build their JSON directly). Public so the
/// benchmark harness's `--json` output modes emit records the same way.
pub mod json {
    use std::fmt::Write;

    /// Escapes and quotes a JSON string.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// JSON numbers cannot express NaN/inf; follow serde_json and emit
    /// `null` for non-finite values.
    pub fn number(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "null".to_string()
        }
    }

    /// Joins pre-rendered JSON values into an array.
    pub fn array(items: impl Iterator<Item = String>) -> String {
        let body: Vec<String> = items.collect();
        format!("[{}]", body.join(", "))
    }

    /// Appends an indented `"name": value` field (no trailing comma).
    pub fn field(out: &mut String, indent: usize, name: &str, value: String) {
        let _ = write!(out, "{}{}: {}", "  ".repeat(indent), string(name), value);
    }
}

impl fmt::Display for SpeedupTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let name_width = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(std::iter::once("benchmark".len()))
            .max()
            .unwrap_or(10)
            + 2;
        write!(f, "{:<name_width$}", "benchmark")?;
        for c in &self.columns {
            write!(f, "{c:>24}")?;
        }
        writeln!(f)?;
        for (name, values) in &self.rows {
            write!(f, "{name:<name_width$}")?;
            for v in values {
                if v.is_finite() {
                    write!(f, "{v:>24.2}")?;
                } else {
                    write!(f, "{:>24}", "-")?;
                }
            }
            writeln!(f)?;
        }
        write!(f, "{:<name_width$}", "geomean")?;
        for g in self.column_geomeans() {
            if g.is_finite() {
                write!(f, "{g:>24.2}")?;
            } else {
                write!(f, "{:>24}", "-")?;
            }
        }
        writeln!(f)
    }
}

/// A named series of `(x, y)` points (one line of a figure).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series name (legend entry).
    pub name: String,
    /// Points, in plotting order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The final y value (e.g. speedup at the end of training).
    pub fn final_value(&self) -> Option<f64> {
        self.points.last().map(|(_, y)| *y)
    }

    /// The largest y value.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, y)| *y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }
}

/// A figure: several series plus axis labels, serializable to JSON for
/// external plotting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Serializes the figure to JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        json::field(&mut out, 1, "title", json::string(&self.title));
        out.push_str(",\n");
        json::field(&mut out, 1, "x_label", json::string(&self.x_label));
        out.push_str(",\n");
        json::field(&mut out, 1, "y_label", json::string(&self.y_label));
        out.push_str(",\n");
        let series = self.series.iter().map(|s| {
            let points = s
                .points
                .iter()
                .map(|(x, y)| format!("[{}, {}]", json::number(*x), json::number(*y)));
            format!(
                "{{\"name\": {}, \"points\": {}}}",
                json::string(&s.name),
                json::array(points)
            )
        });
        json::field(&mut out, 1, "series", json::array(series));
        out.push_str("\n}");
        out
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== {} ({} vs {}) ==",
            self.title, self.y_label, self.x_label
        )?;
        for s in &self.series {
            let points: Vec<String> = s
                .points
                .iter()
                .map(|(x, y)| format!("({x:.2}, {y:.3})"))
                .collect();
            writeln!(f, "  {}: {}", s.name, points.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_and_geomean() {
        let mut t = SpeedupTable::new("Table III", vec!["MLIR RL".into(), "PyTorch".into()]);
        t.push_row("ResNet-18", vec![25.43, 374.77]);
        t.push_row("VGG", vec![54.64, 321.99]);
        let g = t.column_geomeans();
        assert!((g[0] - (25.43f64 * 54.64).sqrt()).abs() < 1e-6);
        let text = t.to_string();
        assert!(text.contains("ResNet-18"));
        assert!(text.contains("geomean"));
        assert!(t.to_json().contains("\"MLIR RL\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = SpeedupTable::new("t", vec!["a".into()]);
        t.push_row("x", vec![1.0, 2.0]);
    }

    #[test]
    fn nan_entries_are_skipped_in_geomean_and_display() {
        let mut t = SpeedupTable::new("t", vec!["a".into(), "b".into()]);
        t.push_row("x", vec![2.0, f64::NAN]);
        t.push_row("y", vec![8.0, f64::NAN]);
        let g = t.column_geomeans();
        assert!((g[0] - 4.0).abs() < 1e-9);
        assert!(g[1].is_nan());
        assert!(t.to_string().contains('-'));
    }

    #[test]
    fn series_and_figures() {
        let mut s = Series::new("final reward");
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        s.push(2.0, 2.5);
        assert_eq!(s.final_value(), Some(2.5));
        assert_eq!(s.max_value(), Some(3.0));
        let mut fig = Figure::new("Fig. 7", "iteration", "speedup");
        fig.series.push(s);
        assert!(fig.to_string().contains("final reward"));
        assert!(fig.to_json().contains("\"points\""));
    }
}
