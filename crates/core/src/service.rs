//! The request/response serving layer: a long-lived [`OptimizationService`]
//! in front of the trained policy.
//!
//! The paper deploys the policy as a one-shot "optimize this module" call;
//! a production deployment is a *service*: requests arrive continuously,
//! and the wins come from amortizing state across them — one persistent
//! shared evaluation cache (every request warms every later request), one
//! policy snapshot per worker, one global evaluation budget. This module
//! composes the primitives the lower layers already provide
//! ([`SharedEvalCache`] via the environment, [`EvalBudget`],
//! [`StopToken`], [`SearchDriver`]) into that serving surface:
//!
//! * [`OptimizationRequest`] — a module plus a declarative [`SearchSpec`]
//!   (greedy / beam / MCTS / random / portfolio), a seed, a priority, an
//!   optional client id, an optional end-to-end deadline and an optional
//!   per-request environment override.
//! * [`OptimizationService::submit`] / [`OptimizationService::submit_batch`]
//!   — enqueue requests; a pool of long-lived worker threads admits and
//!   executes them. Every submit returns a [`PendingResponse`] handle that
//!   can wait for — or cancel — its request.
//! * [`OptimizationResponse`] — the request's [`SearchOutcome`] plus
//!   per-request accounting (evaluations / cache hits, queue and service
//!   time) and a [`ResponseStatus`].
//!
//! ## Request lifecycle
//!
//! `submit` → **submit-time admission** (backpressure: a full bounded
//! queue answers [`ResponseStatus::Rejected`] immediately — the submitter
//! is never blocked — and the global [`EvalBudget`] is charged a
//! reservation from [`SearchSpec::cost_estimate`]; an exhausted ledger
//! answers [`ResponseStatus::Skipped`]) → **queued** (per-client lanes,
//! priority order and FIFO within a priority inside each lane; the
//! dispatcher interleaves lanes by deficit-weighted round-robin under the
//! per-client in-flight quota) → **dequeue admission** (cancellation,
//! expired-deadline load shedding, [`SearchSpec::try_validate`] and
//! [`EnvConfig::try_validate`] checks) → **running** (the worker builds the
//! spec's searcher and runs it with the request's seed on the service's
//! shared cache; the request's [`StopToken`] carries its deadline, so
//! stop-aware searchers wind down at their next boundary when it passes
//! mid-run) → **responded**. A malformed request is
//! [`ResponseStatus::Rejected`]; a request that never ran (cancelled in
//! the queue, deadline expired before a worker picked it up, budget
//! exhausted at submit) is [`ResponseStatus::Skipped`]; a request stopped
//! mid-run (cancel or deadline) winds down at its searcher's next stop
//! boundary and reports [`ResponseStatus::Stopped`] with its best-so-far —
//! the same semantics as portfolio [`mlir_rl_search::MemberStatus`] rows.
//!
//! ## Determinism
//!
//! Responses extend the search subsystem's determinism contract to the
//! request level: a request's outcome depends only on `(module, spec, seed,
//! policy version, environment config)` — never on the worker count, the
//! submission order, queue priorities, client weights or what else is in
//! flight — because cost-model values are deterministic whether they hit or
//! miss the shared cache, and every searcher reseeds its noise stream from
//! the request seed. The policy version is pinned at submit: the request is
//! served on the [`PolicySnapshot`] checked out when it was admitted, even
//! when a hot swap (from the online trainer or a manual
//! [`OptimizationService::swap_policy`]) lands while it queues, and the
//! version is reported on [`OptimizationResponse::policy_version`] (a
//! constant `0` when no swap ever happens, so services without online
//! training keep their old fingerprints).
//! [`OptimizationResponse::fingerprint`] hashes exactly the deterministic
//! fields, the version included (accounting *counts* and timings
//! legitimately vary with cache warmth and load); the `service_api`
//! integration test battery locks the guarantee across worker counts and
//! shuffled submission orders — per policy version, with swaps landing
//! mid-stream — with quotas, bounded queues and admission reservations
//! enabled.
//!
//! ## Online learning
//!
//! [`ServiceConfig::with_online_training`] closes the loop between serving
//! and training: every `Completed` response (sampling-gated — the serving
//! path pays one branch when the subsystem is off) feeds an
//! [`Experience`] (module, fingerprint, spec, seed, best action trace,
//! speedup, policy version) into a bounded lock-free [`ExperienceStream`];
//! a background [`OnlineTrainer`] thread drains the stream into replay
//! batches, runs PPO updates against a private policy clone on a private
//! environment (its rollouts never touch the serving cache or budget), and
//! publishes a new [`PolicySnapshot`] into the service's
//! [`PolicyRegistry`] only when the candidate's greedy geomean speedup on
//! recently-served modules is at least the incumbent's. Swaps are atomic
//! `Arc` exchanges; checkouts pinned before a swap keep the old snapshot
//! alive for as long as their requests need it.
//!
//! The *liveness* knobs are deliberately outside the guarantee, like the
//! racing portfolio's preempted-loser rows: **which** requests a deadline
//! expires or a full queue rejects depends on load and worker count.
//! Budget admission is the exception this layer works to keep sequenced:
//! reservations are charged under the submission lock in submission order
//! from a pure per-spec cost estimate, so for a fixed submission sequence
//! the set of budget-skipped requests is the same at any worker count
//! (reconciliation refunds after completion can reopen the ledger for
//! *later* submissions, which is a timing effect only sustained traffic
//! observes). Every request that *runs* keeps the full contract; services
//! configured without deadlines, quotas, a queue bound or a budget cap
//! answer every request deterministically.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use mlir_rl_agent::{
    AggregatorClient, AggregatorStats, Experience, ExperienceStream, InferenceAggregator,
    InferenceBatching, OnlineTrainer, OnlineTrainerStats, OnlineTrainingConfig, PolicyNetwork,
    PolicyRegistry, PolicySnapshot,
};
use mlir_rl_costmodel::{
    module_fingerprint, CostModel, EvalBudget, EvalCache, MachineModel, SharedEvalCache,
};
use mlir_rl_env::{EnvConfig, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_obs::{EventKind, MetricsRegistry, ProbeRef, TraceRecorder, TraceSnapshot};
use mlir_rl_search::{
    BatchSearchReport, SearchDriver, SearchJob, SearchOutcome, SearchSpec, Searcher, StopToken,
};

/// The rank a request's search runs at against its [`StopToken`]:
/// [`PendingResponse::cancel`] claims rank 0, which outranks the running
/// search, so stop-aware searchers wind down at their next boundary.
const RUN_RANK: usize = 1;
const CANCEL_RANK: usize = 0;

/// Every backpressure rejection reason starts with this prefix, and
/// [`OptimizationResponse::fingerprint`] excludes such reasons from the
/// hash: whether a queue overflows is a property of instantaneous load,
/// not of the request, so backpressure text must not break fingerprint
/// comparisons across runs.
pub const BACKPRESSURE_PREFIX: &str = "backpressure: ";

/// Static configuration of an [`OptimizationService`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Environment configuration requests run under by default (individual
    /// requests may override it with [`OptimizationRequest::with_env`]).
    pub env: EnvConfig,
    /// Machine the cost model targets.
    pub machine: MachineModel,
    /// Worker threads executing requests (at least 1).
    pub workers: usize,
    /// Global admission cap on cost-model lookups across every request the
    /// service executes (`None` = unlimited). The ledger is charged a
    /// *reservation* from [`SearchSpec::cost_estimate`] at submit, under
    /// the submission lock, and reconciled to the real spend when the
    /// request finishes — so for a fixed submission sequence, **which**
    /// requests an exhausted ledger answers [`ResponseStatus::Skipped`]
    /// does not depend on the worker count.
    pub eval_budget: Option<u64>,
    /// Upper bound on the number of *queued* (not yet dispatched)
    /// requests. A submit that would push past the bound is answered
    /// [`ResponseStatus::Rejected`] immediately with a
    /// [`BACKPRESSURE_PREFIX`] reason — the submitter is never blocked and
    /// queue memory stays flat under overload. `None` = unbounded
    /// (pre-hardening behaviour, useful for drain-everything batch runs).
    pub queue_capacity: Option<usize>,
    /// Per-client cap on requests *in flight* (dispatched, not yet
    /// responded). A lane at its quota is passed over by the dispatcher
    /// until one of its requests finishes — later-submitted clients run
    /// instead, so one hot client cannot occupy every worker. `None` = no
    /// quota. Must be at least 1 when set.
    pub client_quota: Option<usize>,
    /// Deficit-round-robin weights by client id (see
    /// [`OptimizationRequest::with_client`]); a client absent from the
    /// list weighs 1. A weight-`w` client is offered `w` dequeues per
    /// round-robin cycle. Requests submitted without a client id share
    /// the anonymous `""` lane.
    pub client_weights: Vec<(String, u64)>,
    /// Start with the workers paused: requests queue up but none executes
    /// until [`OptimizationService::resume`]. Useful for deterministic
    /// admission tests and for pre-loading a batch before serving begins.
    pub start_paused: bool,
    /// Per-writer event capacity of the structured trace recorder, or
    /// `None` (the default) for tracing off. When set, the service records
    /// request lifecycle spans and searcher phase events into bounded
    /// lock-free rings (one per worker plus one for the submit side) and
    /// exposes them via [`OptimizationService::trace_snapshot`]. Tracing is
    /// purely observational: responses stay bit-identical
    /// ([`OptimizationResponse::fingerprint`] never covers trace data).
    pub trace_capacity: Option<usize>,
    /// Cross-request inference batching, or `None` (the default) for
    /// direct per-worker policy calls. When set, workers enqueue their
    /// policy-inference calls with a shared [`InferenceAggregator`] whose
    /// dedicated thread packs whatever is pending — across requests,
    /// searchers and clients — into one batched forward pass per tick
    /// (flushing at `max_batch` rows or after `max_wait_us`). Purely a
    /// throughput lever: the blocked tensor kernels make every batched row
    /// bit-identical to the per-vector path and groups keep their own RNGs,
    /// so responses and fingerprints are unchanged by how rows coalesce.
    pub inference_batching: Option<InferenceBatching>,
    /// Capacity of the service's persistent shared evaluation cache, or
    /// `None` (the default) to keep the template environment's capacity.
    /// When set, the service always starts its *own* table of this
    /// capacity (even when the template environment already shares one).
    /// The bound is global and exact; a full cache evicts entry-wise by
    /// the segmented cost-aware policy (see `SharedEvalCache`). Must be at
    /// least 1 when set.
    pub cache_capacity: Option<usize>,
    /// Path of the cache's persistence snapshot, or `None` (the default)
    /// for a memory-only cache. When set, construction restores warmth
    /// from the file if it exists and is valid (a missing or corrupt file
    /// means a clean cold start — never an error or a panic), and
    /// [`OptimizationService::shutdown`] writes the table back, so a
    /// restarted service resumes with the previous process's warmth at
    /// bit-identical responses. Must be non-empty when set.
    pub cache_snapshot: Option<String>,
    /// Online learning from served traffic, or `None` (the default) for a
    /// frozen policy. When set, every `sample_every`-th
    /// [`ResponseStatus::Completed`] response is fed into a bounded
    /// lock-free experience stream, a background trainer drains the
    /// stream into PPO updates against a private policy clone, and
    /// gate-passing candidates are hot-swapped in as new *versions*
    /// through the service's policy registry. Requests pin the published
    /// version at submit and finish on it regardless of later swaps;
    /// [`OptimizationResponse::policy_version`] reports the version each
    /// response ran under. Incompatible with
    /// [`ServiceConfig::inference_batching`] (the aggregator's shared
    /// inference thread holds one policy clone and cannot honor per-run
    /// version pinning).
    pub online_training: Option<OnlineTrainingConfig>,
}

impl ServiceConfig {
    /// A laptop-scale configuration: small environment, one worker, a
    /// bounded queue of 1024 requests, no per-client quotas, no eval
    /// budget. The bounded-queue default means a runaway submitter gets
    /// [`ResponseStatus::Rejected`] backpressure instead of growing the
    /// queue without limit; callers that want the old unbounded behaviour
    /// opt in with [`ServiceConfig::with_unbounded_queue`].
    pub fn quick() -> Self {
        Self {
            env: EnvConfig::small(),
            machine: MachineModel::xeon_e5_2680_v4(),
            workers: 1,
            eval_budget: None,
            queue_capacity: Some(1024),
            client_quota: None,
            client_weights: Vec::new(),
            start_paused: false,
            trace_capacity: None,
            inference_batching: None,
            cache_capacity: None,
            cache_snapshot: None,
            online_training: None,
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the global eval-budget cap.
    pub fn with_eval_budget(mut self, cap: u64) -> Self {
        self.eval_budget = Some(cap);
        self
    }

    /// Bounds the queue at `capacity` requests (see
    /// [`ServiceConfig::queue_capacity`]).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Removes the queue bound: every submit queues, memory grows with
    /// the backlog.
    pub fn with_unbounded_queue(mut self) -> Self {
        self.queue_capacity = None;
        self
    }

    /// Caps each client's in-flight requests (see
    /// [`ServiceConfig::client_quota`]).
    pub fn with_client_quota(mut self, quota: usize) -> Self {
        self.client_quota = Some(quota);
        self
    }

    /// Sets a client's deficit-round-robin weight (replacing any earlier
    /// weight for the same client).
    pub fn with_client_weight(mut self, client: impl Into<String>, weight: u64) -> Self {
        let client = client.into();
        self.client_weights.retain(|(name, _)| *name != client);
        self.client_weights.push((client, weight));
        self
    }

    /// Starts the service paused (see [`ServiceConfig::start_paused`]).
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Enables structured tracing with `capacity` events retained per
    /// writer (see [`ServiceConfig::trace_capacity`]).
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Enables cross-request inference batching: pending policy calls
    /// flush as one shared batch at `max_batch` rows or after
    /// `max_wait_us` microseconds, whichever comes first (see
    /// [`ServiceConfig::inference_batching`]). Both knobs must be non-zero.
    pub fn with_inference_batching(mut self, max_batch: usize, max_wait_us: u64) -> Self {
        self.inference_batching = Some(InferenceBatching {
            max_batch,
            max_wait_us,
        });
        self
    }

    /// Bounds the persistent shared cache at `capacity` entries (see
    /// [`ServiceConfig::cache_capacity`]).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Persists the cache across restarts via a snapshot file at `path`
    /// (see [`ServiceConfig::cache_snapshot`]): restored on construction,
    /// written on shutdown.
    pub fn with_cache_snapshot(mut self, path: impl Into<String>) -> Self {
        self.cache_snapshot = Some(path.into());
        self
    }

    /// Enables online learning from served traffic (see
    /// [`ServiceConfig::online_training`]).
    pub fn with_online_training(mut self, config: OnlineTrainingConfig) -> Self {
        self.online_training = Some(config);
        self
    }

    /// Validates the serving knobs: a zero queue capacity would reject
    /// every request and a zero quota would block every client forever —
    /// both are configuration bugs, not useful modes, so they fail here
    /// (and in [`OptimizationService::try_new`]) instead of deadlocking a
    /// live service.
    pub fn try_validate(&self) -> Result<(), String> {
        self.env.try_validate()?;
        if self.queue_capacity == Some(0) {
            return Err("queue_capacity must be at least 1 (0 rejects every request)".to_string());
        }
        if self.client_quota == Some(0) {
            return Err(
                "client_quota must be at least 1 (0 would block every client forever)".to_string(),
            );
        }
        if let Some((client, _)) = self.client_weights.iter().find(|(_, w)| *w == 0) {
            return Err(format!(
                "client weight for {client:?} must be at least 1 (0 would starve the lane)"
            ));
        }
        if self.trace_capacity == Some(0) {
            return Err(
                "trace_capacity must be at least 1 (0 records nothing; use None to disable)"
                    .to_string(),
            );
        }
        if let Some(batching) = &self.inference_batching {
            if batching.max_batch == 0 {
                return Err(
                    "inference_batching.max_batch must be at least 1 (0 can never flush; \
                     use None to disable batching)"
                        .to_string(),
                );
            }
            if batching.max_wait_us == 0 {
                return Err(
                    "inference_batching.max_wait_us must be at least 1 (0 gives rows no \
                     time to coalesce; use None to disable batching)"
                        .to_string(),
                );
            }
        }
        if self.cache_capacity == Some(0) {
            return Err(
                "cache_capacity must be at least 1 (0 memoizes nothing; use None for the default)"
                    .to_string(),
            );
        }
        if self.cache_snapshot.as_deref() == Some("") {
            return Err(
                "cache_snapshot must name a file (empty path; use None for memory-only)"
                    .to_string(),
            );
        }
        if let Some(online) = &self.online_training {
            online.try_validate()?;
            if self.inference_batching.is_some() {
                return Err(
                    "online_training is incompatible with inference_batching: the \
                     aggregator's shared inference thread holds one policy clone and \
                     cannot honor per-run policy-version pinning"
                        .to_string(),
                );
            }
        }
        Ok(())
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// One optimization request: a module plus everything needed to search its
/// schedule space deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationRequest {
    /// Module to optimize.
    pub module: Module,
    /// Declarative description of the search to run.
    pub spec: SearchSpec,
    /// Search seed — with the module, spec and policy, this fully
    /// determines the response's outcome.
    pub seed: u64,
    /// Scheduling priority: higher-priority requests leave their client's
    /// lane first (FIFO within a priority). Priorities affect *when* a
    /// request runs, never *what* it computes.
    pub priority: i32,
    /// End-to-end deadline, measured from submission. A request still
    /// queued when it passes is load-shed at dequeue
    /// ([`ResponseStatus::Skipped`], nothing ran); a request already
    /// running carries the deadline on its [`StopToken`], so stop-aware
    /// searchers wind down at their next boundary and answer
    /// [`ResponseStatus::Stopped`] with the best-so-far. `None` waits
    /// indefinitely. A liveness knob — responses produced under deadline
    /// pressure are still deterministic, but *which* requests expire
    /// depends on load.
    pub deadline: Option<Duration>,
    /// Client id for fair scheduling: requests from the same client share
    /// one queue lane, and the dispatcher interleaves lanes by
    /// deficit-weighted round-robin (weights from
    /// [`ServiceConfig::client_weights`], per-client in-flight cap from
    /// [`ServiceConfig::client_quota`]). `None` shares the anonymous
    /// lane. Scheduling-only: never affects a response's outcome or
    /// fingerprint.
    pub client: Option<String>,
    /// Per-request environment override. Validated at admission with
    /// [`EnvConfig::try_validate`], and additionally required to preserve
    /// the observation/action *shape* the service policy was built for
    /// (fields like `reward_mode` and `noise_seed` may differ; `max_loops`,
    /// tile candidates, feature sizes may not) — a malformed or
    /// shape-changing config yields [`ResponseStatus::Rejected`] instead of
    /// a panic. The override environment still shares the service's
    /// evaluation cache.
    pub env: Option<EnvConfig>,
}

impl OptimizationRequest {
    /// A request with seed 0, default priority, no deadline, no client id
    /// and the service's environment.
    pub fn new(module: Module, spec: SearchSpec) -> Self {
        Self {
            module,
            spec,
            seed: 0,
            priority: 0,
            deadline: None,
            client: None,
            env: None,
        }
    }

    /// Sets the search seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the end-to-end deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tags the request with a client id for fair scheduling.
    pub fn with_client(mut self, client: impl Into<String>) -> Self {
        self.client = Some(client.into());
        self
    }

    /// Overrides the environment configuration for this request.
    pub fn with_env(mut self, env: EnvConfig) -> Self {
        self.env = Some(env);
        self
    }
}

/// How a request left the service — the request-level analogue of
/// [`mlir_rl_search::MemberStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResponseStatus {
    /// The search ran to completion.
    Completed,
    /// The request was stopped mid-run (cancelled, or its deadline passed);
    /// the outcome is the search's best-so-far at the stop boundary
    /// (stop-unaware searchers such as greedy decoding finish their run
    /// regardless).
    Stopped,
    /// The request never ran: cancelled while queued, deadline expired
    /// before dispatch, or the service's eval budget was exhausted at
    /// submit. All accounting is zero; `error` says why.
    Skipped,
    /// The request was refused: malformed (spec or environment override
    /// failed validation) or pushed back by backpressure (queue full,
    /// service shutting down — reasons prefixed [`BACKPRESSURE_PREFIX`]).
    /// `error` carries the problem. Nothing ran.
    Rejected,
}

/// The answer to one [`OptimizationRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationResponse {
    /// Service-assigned request id (submission order).
    pub id: u64,
    /// Name of the requested module.
    pub module: String,
    /// Display name of the requested searcher.
    pub searcher: String,
    /// How the request finished.
    pub status: ResponseStatus,
    /// The search outcome ([`ResponseStatus::Completed`] and
    /// [`ResponseStatus::Stopped`] only).
    pub outcome: Option<SearchOutcome>,
    /// Why the request was skipped, rejected or deadline-stopped.
    pub error: Option<String>,
    /// Estimator runs this request caused (cache misses).
    pub evaluations: usize,
    /// Lookups the shared cache served for this request.
    pub cache_hits: usize,
    /// Seconds the request waited in the queue before a worker picked it
    /// up.
    pub queue_s: f64,
    /// Seconds the search itself ran.
    pub service_s: f64,
    /// Trace id of this request in the service's trace recorder (`None`
    /// when the service ran without tracing). Like all timing data, it is
    /// excluded from [`OptimizationResponse::fingerprint`]: which id a
    /// request drew depends on submission order, never on the outcome.
    pub trace_id: Option<u64>,
    /// The policy version this request was admitted with (and therefore
    /// ran under — in-flight requests are immune to later swaps). Always
    /// 0 when the service runs without
    /// [`ServiceConfig::with_online_training`] and no manual
    /// [`OptimizationService::swap_policy`] happened. Part of the
    /// request-level determinism contract and of
    /// [`OptimizationResponse::fingerprint`]: the outcome depends only on
    /// `(module, spec, seed, policy version, env config)`.
    pub policy_version: u64,
}

impl OptimizationResponse {
    /// Speedup of the best schedule found (1.0 when nothing ran).
    pub fn speedup(&self) -> f64 {
        self.outcome.as_ref().map_or(1.0, |o| o.speedup)
    }

    /// Total cost-model lookups of the request
    /// (`evaluations + cache_hits`).
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }

    /// FNV-1a hash of exactly the fields the service's determinism
    /// guarantee covers: module, searcher, status, the policy version the
    /// request was admitted with (a constant 0 when online training is
    /// off, so fingerprint comparisons across runs are unaffected by the
    /// field's existence), the rejection reason
    /// (validation messages are a deterministic function of the request),
    /// and the outcome's baseline/best estimates, speedup, action
    /// sequence, schedule and nodes expanded. Excludes the request id,
    /// the trace id, timings, cache accounting *counts*, portfolio member attribution
    /// rows, the error text of [`ResponseStatus::Skipped`] and
    /// [`ResponseStatus::Stopped`] responses (skip/stop reasons embed
    /// load-dependent measurements such as queue wait and budget spend),
    /// and [`BACKPRESSURE_PREFIX`] rejection reasons (whether a bounded
    /// queue overflows is a property of load, not of the request) — those
    /// legitimately vary with submission order, load and table warmth.
    /// Two runs of the same request set produce equal fingerprints for
    /// matching requests, regardless of worker count or arrival order.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.module.as_bytes());
        h.write(self.searcher.as_bytes());
        h.write(format!("{:?}", self.status).as_bytes());
        h.write(&self.policy_version.to_le_bytes());
        let backpressure = self
            .error
            .as_deref()
            .is_some_and(|e| e.starts_with(BACKPRESSURE_PREFIX));
        if self.status == ResponseStatus::Rejected && !backpressure {
            h.write(format!("{:?}", self.error).as_bytes());
        }
        if let Some(outcome) = &self.outcome {
            for bits in [
                outcome.baseline_s.to_bits(),
                outcome.best_s.to_bits(),
                outcome.speedup.to_bits(),
                outcome.nodes_expanded as u64,
            ] {
                h.write(&bits.to_le_bytes());
            }
            h.write(format!("{:?}", outcome.best_actions).as_bytes());
            h.write(format!("{:?}", outcome.best_schedule).as_bytes());
        }
        h.finish()
    }
}

/// FNV-1a, stable across Rust releases (unlike `DefaultHasher`), so
/// fingerprints can be compared across builds and recorded in fixtures.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Handle to a submitted request: wait for the response, poll it, or
/// cancel the request.
#[derive(Debug, Clone)]
pub struct PendingResponse {
    id: u64,
    stop: StopToken,
    slot: Arc<ResponseSlot>,
}

impl PendingResponse {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response is available (condvar wait, no polling).
    pub fn wait(&self) -> OptimizationResponse {
        let mut ready = self.slot.ready.lock().expect("response slot poisoned");
        while ready.is_none() {
            ready = self.slot.cond.wait(ready).expect("response slot poisoned");
        }
        ready.clone().expect("checked above")
    }

    /// Waits for the response for at most `timeout`, returning `None` when
    /// the request is still outstanding after that long. The request keeps
    /// running — call again, [`PendingResponse::wait`], or
    /// [`PendingResponse::cancel`] as appropriate.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<OptimizationResponse> {
        let ready = self.slot.ready.lock().expect("response slot poisoned");
        let (ready, _) = self
            .slot
            .cond
            .wait_timeout_while(ready, timeout, |ready| ready.is_none())
            .expect("response slot poisoned");
        ready.clone()
    }

    /// The response, if it is already available.
    pub fn try_response(&self) -> Option<OptimizationResponse> {
        self.slot
            .ready
            .lock()
            .expect("response slot poisoned")
            .clone()
    }

    /// Cancels the request: if it has not started it is answered
    /// [`ResponseStatus::Skipped`]; if it is running, stop-aware searchers
    /// wind down at their next boundary and the response is
    /// [`ResponseStatus::Stopped`] with the best-so-far; if it already
    /// finished, this is a no-op.
    pub fn cancel(&self) {
        self.stop.claim(CANCEL_RANK);
    }
}

/// Waits for every pending response, in handle order.
pub fn wait_all(pending: &[PendingResponse]) -> Vec<OptimizationResponse> {
    pending.iter().map(PendingResponse::wait).collect()
}

#[derive(Debug)]
struct ResponseSlot {
    ready: Mutex<Option<OptimizationResponse>>,
    cond: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            ready: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn fill(&self, response: OptimizationResponse) {
        let mut ready = self.ready.lock().expect("response slot poisoned");
        *ready = Some(response);
        self.cond.notify_all();
    }
}

/// A queued request plus its routing state. Ordered by (priority, FIFO)
/// within its client's lane: each lane is a max-heap, so higher priorities
/// pop first and equal priorities pop in submission order.
struct QueuedJob {
    id: u64,
    submitted: Instant,
    /// Eval-budget reservation charged at submit, reconciled (refunded or
    /// topped up to the real spend) when the request leaves the service.
    reserved: u64,
    /// The policy snapshot checked out at submit: the request runs on this
    /// version no matter how many hot swaps happen while it is queued.
    policy: Arc<PolicySnapshot>,
    request: OptimizationRequest,
    stop: StopToken,
    slot: Arc<ResponseSlot>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.request.priority == other.request.priority && self.id == other.id
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.request
            .priority
            .cmp(&other.request.priority)
            .then(other.id.cmp(&self.id))
    }
}

/// One client's slice of the queue: its pending requests, its
/// deficit-round-robin credit and its in-flight count (against
/// [`ServiceConfig::client_quota`]).
struct ClientLane {
    heap: BinaryHeap<QueuedJob>,
    weight: u64,
    credit: u64,
    in_flight: usize,
}

/// What the dispatcher found when it asked for work.
//
// `Job` dwarfs the unit variants, but a `Popped` lives only for the
// hand-off from the queue lock to the worker — boxing would buy nothing
// except an allocation per dequeue.
#[allow(clippy::large_enum_variant)]
enum Popped {
    /// A job to run, plus its lane index (for the in-flight decrement).
    Job(QueuedJob, usize),
    /// Requests are queued but every non-empty lane is at its in-flight
    /// quota: wait for a completion, then try again.
    Blocked,
    /// The queue is empty.
    Idle,
}

struct ServiceState {
    /// Per-client lanes in creation (first-submission) order. Lanes are
    /// never removed — a client's weight and in-flight count persist for
    /// the service's lifetime.
    lanes: Vec<ClientLane>,
    /// Client id → lane index.
    index: HashMap<String, usize>,
    /// Deficit-round-robin scan position.
    cursor: usize,
    /// Total queued (not yet dispatched) requests across all lanes.
    depth: usize,
    paused: bool,
    shutdown: bool,
}

impl ServiceState {
    /// The lane for `client`, created on first use with its configured
    /// weight (default 1).
    fn lane_for(&mut self, client: &str, weights: &[(String, u64)]) -> usize {
        if let Some(&i) = self.index.get(client) {
            return i;
        }
        let weight = weights
            .iter()
            .find(|(name, _)| name == client)
            .map_or(1, |(_, w)| *w)
            .max(1);
        let i = self.lanes.len();
        self.lanes.push(ClientLane {
            heap: BinaryHeap::new(),
            weight,
            credit: 0,
            in_flight: 0,
        });
        self.index.insert(client.to_string(), i);
        i
    }

    /// Deficit-weighted round-robin dispatch. Pass 0 serves the first
    /// lane (from the cursor) that has queued work, remaining credit and
    /// quota headroom; if none has credit, every eligible lane is
    /// replenished by its weight (capped at twice the weight so an idle
    /// heavy client cannot bank an unbounded burst) and pass 1 serves. A
    /// lane drained empty forfeits its credit — deficit round-robin's
    /// classic rule, keeping long-idle lanes from hoarding turns.
    fn pop_next(&mut self, quota: Option<usize>) -> Popped {
        if self.depth == 0 {
            return Popped::Idle;
        }
        let n = self.lanes.len();
        for pass in 0..2 {
            for step in 0..n {
                let i = (self.cursor + step) % n;
                let lane = &mut self.lanes[i];
                if lane.heap.is_empty() {
                    lane.credit = 0;
                    continue;
                }
                if quota.is_some_and(|q| lane.in_flight >= q) || lane.credit == 0 {
                    continue;
                }
                lane.credit -= 1;
                lane.in_flight += 1;
                let job = lane.heap.pop().expect("non-empty lane");
                self.depth -= 1;
                self.cursor = (i + 1) % n;
                return Popped::Job(job, i);
            }
            if pass == 0 {
                let mut eligible = false;
                for lane in &mut self.lanes {
                    if lane.heap.is_empty() || quota.is_some_and(|q| lane.in_flight >= q) {
                        continue;
                    }
                    lane.credit = (lane.credit + lane.weight).min(lane.weight.saturating_mul(2));
                    eligible = true;
                }
                if !eligible {
                    return Popped::Blocked;
                }
            }
        }
        // Unreachable: a replenished lane has credit >= 1 and pass 1
        // serves it; kept as a safe fallback.
        Popped::Blocked
    }
}

/// Number of power-of-two microsecond latency buckets: bucket `i` counts
/// samples in `(2^i, 2^(i+1)]` µs, so 40 buckets span sub-microsecond to
/// ~13 days.
const HIST_BUCKETS: usize = 40;

/// A fixed-bucket, lock-free latency histogram: recording is two relaxed
/// atomic adds, so the serving hot path never contends on metrics.
/// Quantiles report the matched bucket's *upper* bound — a conservative
/// (never under-reported) tail estimate that is also never zero for a
/// non-empty histogram.
#[derive(Debug)]
struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    fn record(&self, seconds: f64) {
        let us = (seconds * 1e6).max(0.0) as u64;
        let idx = (63 - us.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// The `q`-quantile in seconds (0 when nothing was recorded).
    fn quantile(&self, q: f64) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return (1u64 << (i + 1)) as f64 / 1e6;
            }
        }
        (1u64 << HIST_BUCKETS) as f64 / 1e6
    }

    /// Mean recorded latency in seconds (exact, from the running sum).
    fn mean(&self) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / count as f64 / 1e6
        }
    }

    /// Relaxed snapshot of the raw per-bucket counts, for exporters that
    /// want the distribution rather than derived quantiles.
    fn buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

struct ServiceShared {
    state: Mutex<ServiceState>,
    work: Condvar,
    budget: EvalBudget,
    cache: SharedEvalCache,
    /// Snapshot file the cache persists to at shutdown
    /// ([`ServiceConfig::cache_snapshot`]); `None` = memory-only.
    cache_snapshot: Option<String>,
    /// Entries restored from the snapshot at construction (0 on a cold
    /// start, including a missing or corrupt snapshot file).
    cache_restored: u64,
    queue_capacity: Option<usize>,
    client_quota: Option<usize>,
    client_weights: Vec<(String, u64)>,
    submitted: AtomicU64,
    completed: AtomicU64,
    stopped: AtomicU64,
    skipped: AtomicU64,
    rejected: AtomicU64,
    admitted: AtomicU64,
    overflow: AtomicU64,
    sheds: AtomicU64,
    deadline_stops: AtomicU64,
    quota_deferrals: AtomicU64,
    budget_skips: AtomicU64,
    queue_high_water: AtomicU64,
    queue_hist: LatencyHistogram,
    service_hist: LatencyHistogram,
    /// Present iff the service was built with
    /// [`ServiceConfig::with_tracing`]: ring 0 records submit-side
    /// lifecycle events, ring `1 + w` records worker `w`'s events.
    recorder: Option<TraceRecorder>,
    /// Versioned policy publication. Always present: version 0 is the
    /// policy the service was constructed with; the online trainer (or a
    /// manual [`OptimizationService::swap_policy`]) publishes later
    /// versions. Submits check out the current snapshot and pin it on the
    /// job.
    registry: Arc<PolicyRegistry>,
    /// Present iff the service was built with
    /// [`ServiceConfig::with_online_training`]: the experience feed the
    /// workers fill on `Completed` responses.
    online: Option<OnlineShared>,
}

/// The worker-facing half of the online learning subsystem.
struct OnlineShared {
    stream: Arc<ExperienceStream>,
    /// Feed every `sample_every`-th completed response.
    sample_every: u64,
    /// Completed responses seen by the sampling gate.
    sample_counter: AtomicU64,
}

/// Aggregate serving statistics, snapshot by
/// [`OptimizationService::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Requests submitted so far.
    pub submitted: u64,
    /// Requests answered [`ResponseStatus::Completed`].
    pub completed: u64,
    /// Requests answered [`ResponseStatus::Stopped`].
    pub stopped: u64,
    /// Requests answered [`ResponseStatus::Skipped`].
    pub skipped: u64,
    /// Requests answered [`ResponseStatus::Rejected`].
    pub rejected: u64,
    /// Requests currently waiting in the queue.
    pub pending: u64,
    /// Lifetime hits of the service's persistent shared cache.
    pub cache_hits: u64,
    /// Lifetime misses (estimator runs) of the persistent shared cache.
    pub cache_misses: u64,
    /// Cost-model lookups charged against the global eval budget
    /// (includes outstanding reservations not yet reconciled).
    pub budget_spent: u64,
    /// The global eval-budget cap (`None` = unlimited).
    pub budget_cap: Option<u64>,
}

impl ServiceStats {
    /// Lifetime fraction of lookups served by the persistent cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A point-in-time snapshot of the service's overload-observability
/// surface, taken by [`OptimizationService::metrics`]: queue depth and
/// high-water mark, the admission/backpressure/shedding counters, and
/// fixed-bucket latency distributions for queue wait and service time.
/// All counters are lifetime totals; reading them is lock-free except for
/// the queue depth (one brief state lock) and the cache occupancy (one
/// brief lock per cache shard).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetrics {
    /// Requests submitted so far.
    pub submitted: u64,
    /// Requests answered [`ResponseStatus::Completed`].
    pub completed: u64,
    /// Requests answered [`ResponseStatus::Stopped`].
    pub stopped: u64,
    /// Requests answered [`ResponseStatus::Skipped`].
    pub skipped: u64,
    /// Requests answered [`ResponseStatus::Rejected`].
    pub rejected: u64,
    /// Requests that passed dequeue admission and ran a search.
    pub admitted: u64,
    /// Submits rejected because the bounded queue was full.
    pub overflow_rejects: u64,
    /// Requests load-shed at dequeue because their deadline had passed.
    pub deadline_sheds: u64,
    /// Requests whose deadline passed mid-run (answered
    /// [`ResponseStatus::Stopped`] with best-so-far).
    pub deadline_stops: u64,
    /// Times a dispatcher found work queued but every non-empty lane at
    /// its in-flight quota (it waited for a completion).
    pub quota_deferrals: u64,
    /// Submits skipped because the eval budget could not cover their
    /// reservation.
    pub budget_skips: u64,
    /// Requests currently waiting in the queue.
    pub queue_depth: u64,
    /// Maximum queue depth ever observed — under a burst against a
    /// bounded queue this plateaus at the capacity.
    pub queue_high_water: u64,
    /// Distinct client lanes created so far (the anonymous lane counts
    /// once it has seen a request).
    pub clients: u64,
    /// Median queue wait in seconds (bucket upper bound).
    pub queue_p50_s: f64,
    /// 99th-percentile queue wait in seconds (bucket upper bound).
    pub queue_p99_s: f64,
    /// Mean queue wait in seconds.
    pub queue_mean_s: f64,
    /// Median search run time in seconds (bucket upper bound).
    pub service_p50_s: f64,
    /// 99th-percentile search run time in seconds (bucket upper bound).
    pub service_p99_s: f64,
    /// Mean search run time in seconds.
    pub service_mean_s: f64,
    /// Raw queue-wait histogram counts: bucket `i` counts waits in
    /// `(2^i, 2^(i+1)]` µs. The derived `queue_p*_s` fields report bucket
    /// upper bounds; the raw counts let consumers recompute any quantile
    /// (or merge histograms across services) without loss.
    pub queue_hist_buckets: Vec<u64>,
    /// Raw service-time histogram counts, same bucket layout as
    /// [`ServiceMetrics::queue_hist_buckets`].
    pub service_hist_buckets: Vec<u64>,
    /// Lifetime hits of the service's persistent shared cache.
    pub cache_hits: u64,
    /// Lifetime misses (estimator runs) of the persistent shared cache.
    pub cache_misses: u64,
    /// Entries ever inserted into the persistent shared cache.
    pub cache_insertions: u64,
    /// Entries evicted one at a time by the cache's segmented cost-aware
    /// policy. Stays 0 until the table actually fills.
    pub cache_evictions: u64,
    /// Probation→protected promotions performed by cache hits.
    pub cache_promotions: u64,
    /// Entries currently memoized in the persistent shared cache.
    pub cache_len: u64,
    /// Capacity bound of the persistent shared cache (global and exact).
    pub cache_capacity: u64,
    /// Entries restored from the snapshot file at construction (0 on a
    /// cold start or when [`ServiceConfig::cache_snapshot`] is unset).
    pub cache_restored: u64,
    /// Cost-model lookups charged against the global eval budget
    /// (includes outstanding reservations not yet reconciled).
    pub budget_spent: u64,
    /// The global eval-budget cap (`None` = unlimited).
    pub budget_cap: Option<u64>,
    /// Batches formed by the cross-request inference aggregator. Zero
    /// when the service runs without
    /// [`ServiceConfig::with_inference_batching`].
    pub inference_batches: u64,
    /// Observation rows packed across all aggregator batches.
    pub inference_rows: u64,
    /// Mean rows per aggregator batch (`rows / batches`; 0 when no batch
    /// has formed). The headline coalescing gauge: values above 1 mean
    /// cross-request work actually shared forward passes.
    pub inference_rows_per_batch_mean: f64,
    /// Batches flushed because pending rows reached `max_batch`.
    pub inference_flush_size: u64,
    /// Batches flushed because the oldest group waited `max_wait_us`.
    pub inference_flush_timeout: u64,
    /// Batches flushed because every registered in-flight run was already
    /// waiting (no more rows could arrive).
    pub inference_flush_idle: u64,
    /// Batches flushed while draining the queue at shutdown.
    pub inference_flush_drain: u64,
    /// Batches run inline on the submitting worker (leader-combining)
    /// rather than by the dedicated inference thread — a subset of the
    /// reason counters above.
    pub inference_flush_inline: u64,
    /// Mean time a group spent queued before its batch ran, in seconds.
    pub inference_queue_wait_mean_s: f64,
    /// Rows-per-batch histogram: bucket `i` counts batches whose row
    /// count `r` satisfies `floor(log2(r)) == i` (the last bucket absorbs
    /// the tail). Empty when batching is off.
    pub inference_rows_per_batch_buckets: Vec<u64>,
    /// The policy version new submits are admitted with right now (0
    /// until a swap is published).
    pub policy_version: u64,
    /// Policy snapshots published so far (online-trainer promotions plus
    /// manual [`OptimizationService::swap_policy`] calls).
    pub policy_swaps: u64,
    /// Experiences accepted into the online experience stream. Zero when
    /// the service runs without [`ServiceConfig::with_online_training`].
    pub online_experiences_accepted: u64,
    /// Experiences dropped because the bounded experience stream was full
    /// (the hot path never blocks on the trainer).
    pub online_experiences_dropped: u64,
    /// PPO updates the background online trainer has run.
    pub online_train_steps: u64,
    /// Candidate policies the promotion gate refused to publish (their
    /// greedy geomean fell below the incumbent's).
    pub online_gate_rejects: u64,
}

impl ServiceMetrics {
    /// Lifetime fraction of lookups served by the persistent cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Serializes the snapshot to JSON (via [`crate::report::json`], like
    /// every other report type in this crate).
    pub fn to_json(&self) -> String {
        use crate::report::json;
        let fields: Vec<(&str, String)> = vec![
            ("submitted", json::number(self.submitted as f64)),
            ("completed", json::number(self.completed as f64)),
            ("stopped", json::number(self.stopped as f64)),
            ("skipped", json::number(self.skipped as f64)),
            ("rejected", json::number(self.rejected as f64)),
            ("admitted", json::number(self.admitted as f64)),
            (
                "overflow_rejects",
                json::number(self.overflow_rejects as f64),
            ),
            ("deadline_sheds", json::number(self.deadline_sheds as f64)),
            ("deadline_stops", json::number(self.deadline_stops as f64)),
            ("quota_deferrals", json::number(self.quota_deferrals as f64)),
            ("budget_skips", json::number(self.budget_skips as f64)),
            ("queue_depth", json::number(self.queue_depth as f64)),
            (
                "queue_high_water",
                json::number(self.queue_high_water as f64),
            ),
            ("clients", json::number(self.clients as f64)),
            ("queue_p50_s", json::number(self.queue_p50_s)),
            ("queue_p99_s", json::number(self.queue_p99_s)),
            ("queue_mean_s", json::number(self.queue_mean_s)),
            ("service_p50_s", json::number(self.service_p50_s)),
            ("service_p99_s", json::number(self.service_p99_s)),
            ("service_mean_s", json::number(self.service_mean_s)),
            (
                "queue_hist_buckets",
                json::array(
                    self.queue_hist_buckets
                        .iter()
                        .map(|c| json::number(*c as f64)),
                ),
            ),
            (
                "service_hist_buckets",
                json::array(
                    self.service_hist_buckets
                        .iter()
                        .map(|c| json::number(*c as f64)),
                ),
            ),
            ("cache_hits", json::number(self.cache_hits as f64)),
            ("cache_misses", json::number(self.cache_misses as f64)),
            ("cache_hit_rate", json::number(self.cache_hit_rate())),
            (
                "cache_insertions",
                json::number(self.cache_insertions as f64),
            ),
            ("cache_evictions", json::number(self.cache_evictions as f64)),
            (
                "cache_promotions",
                json::number(self.cache_promotions as f64),
            ),
            ("cache_len", json::number(self.cache_len as f64)),
            ("cache_capacity", json::number(self.cache_capacity as f64)),
            ("cache_restored", json::number(self.cache_restored as f64)),
            ("budget_spent", json::number(self.budget_spent as f64)),
            (
                "budget_cap",
                self.budget_cap
                    .map_or("null".to_string(), |cap| json::number(cap as f64)),
            ),
            (
                "inference_batches",
                json::number(self.inference_batches as f64),
            ),
            ("inference_rows", json::number(self.inference_rows as f64)),
            (
                "inference_rows_per_batch_mean",
                json::number(self.inference_rows_per_batch_mean),
            ),
            (
                "inference_flush_size",
                json::number(self.inference_flush_size as f64),
            ),
            (
                "inference_flush_timeout",
                json::number(self.inference_flush_timeout as f64),
            ),
            (
                "inference_flush_idle",
                json::number(self.inference_flush_idle as f64),
            ),
            (
                "inference_flush_drain",
                json::number(self.inference_flush_drain as f64),
            ),
            (
                "inference_flush_inline",
                json::number(self.inference_flush_inline as f64),
            ),
            (
                "inference_queue_wait_mean_s",
                json::number(self.inference_queue_wait_mean_s),
            ),
            (
                "inference_rows_per_batch_buckets",
                json::array(
                    self.inference_rows_per_batch_buckets
                        .iter()
                        .map(|c| json::number(*c as f64)),
                ),
            ),
            ("policy_version", json::number(self.policy_version as f64)),
            ("policy_swaps", json::number(self.policy_swaps as f64)),
            (
                "online_experiences_accepted",
                json::number(self.online_experiences_accepted as f64),
            ),
            (
                "online_experiences_dropped",
                json::number(self.online_experiences_dropped as f64),
            ),
            (
                "online_train_steps",
                json::number(self.online_train_steps as f64),
            ),
            (
                "online_gate_rejects",
                json::number(self.online_gate_rejects as f64),
            ),
        ];
        let mut out = String::from("{\n");
        let last = fields.len() - 1;
        for (i, (name, value)) in fields.into_iter().enumerate() {
            json::field(&mut out, 1, name, value);
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        out.push('}');
        out
    }

    /// Registers every serving, cache and budget series into one
    /// [`MetricsRegistry`] under the `mlir_rl_` prefix — the unified
    /// surface behind [`OptimizationService::prometheus`]. Raw histogram
    /// buckets export as cumulative `_bucket{le="..."}` counters in the
    /// Prometheus histogram convention (bucket upper bounds in seconds,
    /// plus `+Inf`, `_sum` approximated by `mean * count`, `_count`).
    pub fn register(&self, registry: &mut MetricsRegistry) {
        let c = |registry: &mut MetricsRegistry, name: &str, help: &str, v: u64| {
            registry.counter(&format!("mlir_rl_{name}"), help, v as f64);
        };
        let g = |registry: &mut MetricsRegistry, name: &str, help: &str, v: f64| {
            registry.gauge(&format!("mlir_rl_{name}"), help, v);
        };
        c(
            registry,
            "requests_submitted_total",
            "Requests submitted to the service",
            self.submitted,
        );
        c(
            registry,
            "requests_completed_total",
            "Requests answered Completed",
            self.completed,
        );
        c(
            registry,
            "requests_stopped_total",
            "Requests answered Stopped (cancel or mid-run deadline)",
            self.stopped,
        );
        c(
            registry,
            "requests_skipped_total",
            "Requests answered Skipped (never ran)",
            self.skipped,
        );
        c(
            registry,
            "requests_rejected_total",
            "Requests answered Rejected",
            self.rejected,
        );
        c(
            registry,
            "requests_admitted_total",
            "Requests that passed dequeue admission and ran",
            self.admitted,
        );
        c(
            registry,
            "queue_overflow_rejects_total",
            "Submits rejected by the bounded queue",
            self.overflow_rejects,
        );
        c(
            registry,
            "deadline_sheds_total",
            "Requests shed at dequeue on an expired deadline",
            self.deadline_sheds,
        );
        c(
            registry,
            "deadline_stops_total",
            "Requests stopped mid-run by their deadline",
            self.deadline_stops,
        );
        c(
            registry,
            "quota_deferrals_total",
            "Dispatcher waits with all non-empty lanes at quota",
            self.quota_deferrals,
        );
        c(
            registry,
            "budget_skips_total",
            "Submits refused by the eval-budget ledger",
            self.budget_skips,
        );
        g(
            registry,
            "queue_depth",
            "Requests currently queued",
            self.queue_depth as f64,
        );
        g(
            registry,
            "queue_high_water",
            "Maximum queue depth observed",
            self.queue_high_water as f64,
        );
        g(
            registry,
            "clients",
            "Distinct client lanes created",
            self.clients as f64,
        );
        c(
            registry,
            "cache_hits_total",
            "Persistent shared-cache hits",
            self.cache_hits,
        );
        c(
            registry,
            "cache_misses_total",
            "Persistent shared-cache misses (estimator runs)",
            self.cache_misses,
        );
        g(
            registry,
            "cache_hit_rate",
            "Lifetime fraction of lookups served by the cache",
            self.cache_hit_rate(),
        );
        c(
            registry,
            "cache_insertions_total",
            "Entries inserted into the persistent shared cache",
            self.cache_insertions,
        );
        c(
            registry,
            "cache_evictions_total",
            "Entries evicted by the segmented cost-aware policy",
            self.cache_evictions,
        );
        c(
            registry,
            "cache_promotions_total",
            "Cache-hit promotions from probation to protected",
            self.cache_promotions,
        );
        g(
            registry,
            "cache_len",
            "Entries currently memoized in the shared cache",
            self.cache_len as f64,
        );
        g(
            registry,
            "cache_capacity",
            "Capacity bound of the shared cache",
            self.cache_capacity as f64,
        );
        g(
            registry,
            "cache_restored_entries",
            "Entries restored from the snapshot file at startup",
            self.cache_restored as f64,
        );
        c(
            registry,
            "budget_spent",
            "Cost-model lookups charged against the eval budget",
            self.budget_spent,
        );
        match self.budget_cap {
            Some(cap) => g(registry, "budget_cap", "Global eval-budget cap", cap as f64),
            None => g(
                registry,
                "budget_cap",
                "Global eval-budget cap (-1 = unlimited)",
                -1.0,
            ),
        }
        let histogram = |registry: &mut MetricsRegistry,
                         name: &str,
                         help: &str,
                         buckets: &[u64],
                         mean_s: f64| {
            let mut cumulative = 0u64;
            for (i, count) in buckets.iter().enumerate() {
                cumulative += count;
                if *count == 0 && i + 1 != buckets.len() {
                    continue; // keep the exposition compact: emit touched buckets + the last
                }
                let le = format!("{:.6}", (1u64 << (i + 1)) as f64 / 1e6);
                registry.counter_with(
                    &format!("mlir_rl_{name}_seconds_bucket"),
                    help,
                    &[("le", le.as_str())],
                    cumulative as f64,
                );
            }
            registry.counter_with(
                &format!("mlir_rl_{name}_seconds_bucket"),
                help,
                &[("le", "+Inf")],
                cumulative as f64,
            );
            registry.counter(
                &format!("mlir_rl_{name}_seconds_sum"),
                help,
                mean_s * cumulative as f64,
            );
            registry.counter(
                &format!("mlir_rl_{name}_seconds_count"),
                help,
                cumulative as f64,
            );
        };
        histogram(
            registry,
            "queue_wait",
            "Queue wait distribution",
            &self.queue_hist_buckets,
            self.queue_mean_s,
        );
        histogram(
            registry,
            "service_time",
            "Search run-time distribution",
            &self.service_hist_buckets,
            self.service_mean_s,
        );
        c(
            registry,
            "inference_batches_total",
            "Batches formed by the cross-request inference aggregator",
            self.inference_batches,
        );
        c(
            registry,
            "inference_rows_total",
            "Observation rows packed across aggregator batches",
            self.inference_rows,
        );
        g(
            registry,
            "inference_rows_per_batch_mean",
            "Mean rows per aggregator batch",
            self.inference_rows_per_batch_mean,
        );
        c(
            registry,
            "inference_flush_size_total",
            "Aggregator flushes triggered by max_batch",
            self.inference_flush_size,
        );
        c(
            registry,
            "inference_flush_timeout_total",
            "Aggregator flushes triggered by max_wait_us",
            self.inference_flush_timeout,
        );
        c(
            registry,
            "inference_flush_idle_total",
            "Aggregator flushes with every in-flight run waiting",
            self.inference_flush_idle,
        );
        c(
            registry,
            "inference_flush_drain_total",
            "Aggregator flushes while draining at shutdown",
            self.inference_flush_drain,
        );
        c(
            registry,
            "inference_flush_inline_total",
            "Aggregator flushes run inline on a submitting worker",
            self.inference_flush_inline,
        );
        g(
            registry,
            "inference_queue_wait_mean_s",
            "Mean seconds a group waited for its batch",
            self.inference_queue_wait_mean_s,
        );
        // Rows-per-batch distribution in the Prometheus histogram
        // convention, but with row counts (not seconds) as the bucket
        // bounds: bucket i holds batches with floor(log2(rows)) == i, so
        // its inclusive upper bound is 2^(i+1) - 1. `_sum` is exact here
        // (total rows), unlike the latency histograms' mean * count.
        if !self.inference_rows_per_batch_buckets.is_empty() {
            let mut cumulative = 0u64;
            let last = self.inference_rows_per_batch_buckets.len() - 1;
            for (i, count) in self.inference_rows_per_batch_buckets.iter().enumerate() {
                cumulative += count;
                if *count == 0 && i != last {
                    continue;
                }
                let le = format!("{}", (1u64 << (i + 1)) - 1);
                registry.counter_with(
                    "mlir_rl_inference_rows_per_batch_bucket",
                    "Rows-per-batch distribution",
                    &[("le", le.as_str())],
                    cumulative as f64,
                );
            }
            registry.counter_with(
                "mlir_rl_inference_rows_per_batch_bucket",
                "Rows-per-batch distribution",
                &[("le", "+Inf")],
                cumulative as f64,
            );
            registry.counter(
                "mlir_rl_inference_rows_per_batch_sum",
                "Rows-per-batch distribution",
                self.inference_rows as f64,
            );
            registry.counter(
                "mlir_rl_inference_rows_per_batch_count",
                "Rows-per-batch distribution",
                cumulative as f64,
            );
        }
        g(
            registry,
            "online_policy_version",
            "Policy version new submits are admitted with",
            self.policy_version as f64,
        );
        c(
            registry,
            "online_policy_swaps_total",
            "Policy snapshots published (trainer promotions + manual swaps)",
            self.policy_swaps,
        );
        c(
            registry,
            "online_experiences_accepted_total",
            "Experiences accepted into the online experience stream",
            self.online_experiences_accepted,
        );
        c(
            registry,
            "online_experiences_dropped_total",
            "Experiences dropped because the bounded stream was full",
            self.online_experiences_dropped,
        );
        c(
            registry,
            "online_train_steps_total",
            "PPO updates run by the background online trainer",
            self.online_train_steps,
        );
        c(
            registry,
            "online_gate_rejects_total",
            "Candidate policies the promotion gate refused to publish",
            self.online_gate_rejects,
        );
    }
}

/// A long-lived optimization service: worker threads serving
/// [`OptimizationRequest`]s against one policy snapshot, one persistent
/// shared evaluation cache and one global [`EvalBudget`]. See the module
/// docs for the request lifecycle and the determinism guarantee.
pub struct OptimizationService {
    shared: Arc<ServiceShared>,
    template: OptimizationEnv,
    policy: PolicyNetwork,
    workers: Vec<JoinHandle<()>>,
    /// Present iff the service was built with
    /// [`ServiceConfig::with_inference_batching`]: the shared batch
    /// pipeline the workers route their policy inference through. Shut
    /// down *after* the workers (no client may be left waiting on it).
    aggregator: Option<InferenceAggregator>,
    /// Present iff the service was built with
    /// [`ServiceConfig::with_online_training`]: the background PPO trainer
    /// that drains the experience stream and publishes promoted policy
    /// versions into the registry. Shut down after the workers (they feed
    /// its stream) and before the aggregator.
    trainer: Option<OnlineTrainer>,
    next_id: AtomicU64,
}

impl OptimizationService {
    /// Creates a service from a configuration and a policy snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ServiceConfig::try_validate`];
    /// use [`OptimizationService::try_new`] for a non-panicking
    /// constructor.
    pub fn new(config: ServiceConfig, policy: PolicyNetwork) -> Self {
        Self::try_new(config, policy).expect("invalid service configuration")
    }

    /// Like [`OptimizationService::new`], but a malformed configuration
    /// becomes an error instead of a panic.
    pub fn try_new(config: ServiceConfig, policy: PolicyNetwork) -> Result<Self, String> {
        config.try_validate()?;
        let mut env =
            OptimizationEnv::new(config.env.clone(), CostModel::new(config.machine.clone()));
        env.enable_shared_cache();
        Ok(Self::from_env_template_with(&env, policy, &config))
    }

    /// Creates a service whose requests run against (a clone of) the given
    /// environment. If `env` is already in shared-cache mode the service
    /// **joins that table** — this is how the deprecated
    /// [`crate::MlirRlOptimizer`] facade keeps one warm cache across its
    /// own calls and the service's; otherwise the service starts its own
    /// table seeded with the environment's memoized entries. Serving knobs
    /// are [`ServiceConfig::quick`] defaults with the given worker count.
    pub fn from_env_template(env: &OptimizationEnv, policy: PolicyNetwork, workers: usize) -> Self {
        Self::from_env_template_with(env, policy, &ServiceConfig::quick().with_workers(workers))
    }

    /// The engine under both constructors: `config.env` / `config.machine`
    /// are ignored (the template environment provides them); every serving
    /// knob comes from `config`.
    pub(crate) fn from_env_template_with(
        env: &OptimizationEnv,
        policy: PolicyNetwork,
        config: &ServiceConfig,
    ) -> Self {
        let mut template = env.clone();
        if let Some(capacity) = config.cache_capacity {
            // A configured capacity always means a fresh table of exactly
            // that bound, even when the template already shares one.
            template.replace_cache(EvalCache::with_shared_backend(SharedEvalCache::new(
                capacity,
            )));
        }
        let cache = template.enable_shared_cache();
        // Warm restart: merge the previous process's snapshot in before any
        // request runs. A missing or corrupt file is a clean cold start —
        // determinism is unaffected either way, only the hit-rate changes.
        let cache_restored = match &config.cache_snapshot {
            Some(path) => cache.restore_from(path).unwrap_or(0),
            None => 0,
        };
        let budget = match config.eval_budget {
            Some(cap) => EvalBudget::limited(cap),
            None => EvalBudget::unlimited(),
        };
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                lanes: Vec::new(),
                index: HashMap::new(),
                cursor: 0,
                depth: 0,
                paused: config.start_paused,
                shutdown: false,
            }),
            work: Condvar::new(),
            budget,
            cache,
            cache_snapshot: config.cache_snapshot.clone(),
            cache_restored,
            queue_capacity: config.queue_capacity,
            client_quota: config.client_quota,
            client_weights: config.client_weights.clone(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            stopped: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            deadline_stops: AtomicU64::new(0),
            quota_deferrals: AtomicU64::new(0),
            budget_skips: AtomicU64::new(0),
            queue_high_water: AtomicU64::new(0),
            queue_hist: LatencyHistogram::new(),
            service_hist: LatencyHistogram::new(),
            recorder: config.trace_capacity.map(|capacity| {
                // One ring per worker plus the submit side, plus one for
                // the aggregator's inference thread when batching is on,
                // plus one for the online trainer when training is on —
                // every ring stays single-writer.
                let writers = config.workers.max(1)
                    + 1
                    + usize::from(config.inference_batching.is_some())
                    + usize::from(config.online_training.is_some());
                TraceRecorder::new(capacity, writers)
            }),
            registry: Arc::new(PolicyRegistry::new(policy.clone())),
            online: config.online_training.as_ref().map(|online| OnlineShared {
                stream: Arc::new(ExperienceStream::new(online.capacity)),
                sample_every: online.sample_every,
                sample_counter: AtomicU64::new(0),
            }),
        });
        let aggregator = config.inference_batching.map(|batching| {
            let probe = match &shared.recorder {
                Some(recorder) => recorder.probe(config.workers.max(1) + 1),
                None => ProbeRef::none(),
            };
            InferenceAggregator::spawn(policy.clone(), batching, probe)
        });
        // The trainer runs against a *private* environment (own cache, own
        // cost model clone): its gate probes and PPO rollouts must never
        // perturb the serving cache's hit-rate metrics or the eval budget.
        let trainer = config.online_training.as_ref().map(|online| {
            let probe = match &shared.recorder {
                Some(recorder) => recorder.probe(
                    config.workers.max(1) + 1 + usize::from(config.inference_batching.is_some()),
                ),
                None => ProbeRef::none(),
            };
            let trainer_env =
                OptimizationEnv::new(template.config().clone(), template.cost_model().clone());
            let stream = Arc::clone(
                &shared
                    .online
                    .as_ref()
                    .expect("online shared state exists when training is configured")
                    .stream,
            );
            OnlineTrainer::spawn(
                online.clone(),
                Arc::clone(&shared.registry),
                stream,
                trainer_env,
                probe,
            )
        });
        let workers = (0..config.workers.max(1))
            .map(|worker| {
                let shared = Arc::clone(&shared);
                let env = template.clone();
                let policy = policy.clone();
                let client = aggregator.as_ref().map(InferenceAggregator::client);
                std::thread::spawn(move || worker_loop(shared, env, policy, client, worker))
            })
            .collect();
        Self {
            shared,
            template,
            policy,
            workers,
            aggregator,
            trainer,
            next_id: AtomicU64::new(0),
        }
    }

    /// Submits one request, returning a handle to wait on (or cancel).
    /// Never blocks on queue pressure: a full bounded queue or an
    /// exhausted budget answers the handle immediately (see the module
    /// docs' lifecycle).
    pub fn submit(&self, request: OptimizationRequest) -> PendingResponse {
        let pending = self.enqueue(request);
        self.shared.work.notify_one();
        pending
    }

    /// Submits a batch of requests — just N requests on the one shared
    /// cache — returning their handles in submission order.
    pub fn submit_batch(&self, requests: Vec<OptimizationRequest>) -> Vec<PendingResponse> {
        let pending: Vec<PendingResponse> = requests.into_iter().map(|r| self.enqueue(r)).collect();
        self.shared.work.notify_all();
        pending
    }

    /// Submit-time admission (see the module docs' lifecycle): assign an
    /// id, check backpressure against the bounded queue, charge the
    /// eval-budget reservation (in submission order, under the state
    /// lock), and route the job into its client's lane.
    fn enqueue(&self, request: OptimizationRequest) -> PendingResponse {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let mut stop = StopToken::new();
        if let Some(deadline) = request.deadline {
            stop = stop.with_deadline(Instant::now() + deadline);
        }
        let slot = ResponseSlot::new();
        let pending = PendingResponse {
            id,
            stop: stop.clone(),
            slot: Arc::clone(&slot),
        };
        // Submit-side trace context: ring 0 of the recorder, with the
        // request id (+1 so id 0 stays distinguishable from "untraced")
        // as the trace id threaded through every later event.
        let probe = submit_probe(&self.shared, id);
        let trace_id = probe.trace_id_if_enabled();
        probe.emit(EventKind::Submitted, None, [request.priority as u64, 0, 0]);
        // Admission pins the policy version: the request runs (and is
        // answered) on this snapshot even if swaps land while it queues.
        let snapshot = self.shared.registry.checkout();
        let refusal = |status: ResponseStatus, error: String| OptimizationResponse {
            id,
            module: request.module.name().to_string(),
            searcher: request.spec.name(),
            status,
            outcome: None,
            error: Some(error),
            evaluations: 0,
            cache_hits: 0,
            queue_s: 0.0,
            service_s: 0.0,
            trace_id,
            policy_version: snapshot.version,
        };
        // The reservation estimate is a pure function of the request, so
        // computing it outside the lock keeps the critical section short.
        let est_env = request.env.as_ref().unwrap_or(self.template.config());
        let reserved = request.spec.cost_estimate(est_env, &request.module);

        let mut state = self.shared.state.lock().expect("service state poisoned");
        if state.shutdown {
            drop(state);
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            probe.emit(EventKind::Rejected, Some("shutdown"), [0, 0, 0]);
            slot.fill(refusal(
                ResponseStatus::Rejected,
                format!("{BACKPRESSURE_PREFIX}service is shutting down"),
            ));
            return pending;
        }
        if let Some(capacity) = self.shared.queue_capacity {
            if state.depth >= capacity {
                drop(state);
                self.shared.overflow.fetch_add(1, Ordering::Relaxed);
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                probe.emit(
                    EventKind::Rejected,
                    Some("queue_full"),
                    [capacity as u64, 0, 0],
                );
                slot.fill(refusal(
                    ResponseStatus::Rejected,
                    format!("{BACKPRESSURE_PREFIX}queue full (capacity {capacity})"),
                ));
                return pending;
            }
        }
        if let Err(spent) = self.shared.budget.try_admit(reserved) {
            drop(state);
            self.shared.budget_skips.fetch_add(1, Ordering::Relaxed);
            self.shared.skipped.fetch_add(1, Ordering::Relaxed);
            probe.emit(
                EventKind::BudgetSkip,
                None,
                [reserved, spent, self.shared.budget.cap().unwrap_or(0)],
            );
            slot.fill(refusal(
                ResponseStatus::Skipped,
                format!(
                    "service eval budget exhausted ({spent} lookups spent or reserved, \
                     estimate {reserved} refused)"
                ),
            ));
            return pending;
        }
        let lane = state.lane_for(
            request.client.as_deref().unwrap_or(""),
            &self.shared.client_weights,
        );
        state.lanes[lane].heap.push(QueuedJob {
            id,
            submitted: Instant::now(),
            reserved,
            policy: snapshot,
            request,
            stop,
            slot,
        });
        state.depth += 1;
        probe.emit(
            EventKind::Queued,
            None,
            [state.depth as u64, reserved, lane as u64],
        );
        self.shared
            .queue_high_water
            .fetch_max(state.depth as u64, Ordering::Relaxed);
        pending
    }

    /// Pauses the workers: queued requests stay queued until
    /// [`OptimizationService::resume`]. Requests already running finish.
    pub fn pause(&self) {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .paused = true;
    }

    /// Resumes a paused service.
    pub fn resume(&self) {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .paused = false;
        self.shared.work.notify_all();
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The version-0 policy the service was constructed with. Requests are
    /// served from the *registry's* current snapshot (see
    /// [`OptimizationService::policy_version`]), which starts as a clone
    /// of this network.
    pub fn policy(&self) -> &PolicyNetwork {
        &self.policy
    }

    /// The policy version new submits are admitted with right now. `0`
    /// until a swap is published; each published snapshot increments it.
    pub fn policy_version(&self) -> u64 {
        self.shared.registry.version()
    }

    /// Policy snapshots published so far (trainer promotions plus manual
    /// [`OptimizationService::swap_policy`] calls).
    pub fn policy_swaps(&self) -> u64 {
        self.shared.registry.swaps()
    }

    /// Publishes `policy` as the next version and returns that version —
    /// the manual counterpart of the online trainer's promotion. In-flight
    /// and already-queued requests keep the version they were admitted
    /// with; only later submits see the new weights. The network must have
    /// the same observation/action shape as the service policy.
    ///
    /// # Panics
    ///
    /// Panics when the service was built with
    /// [`ServiceConfig::with_inference_batching`]: the aggregator's shared
    /// inference thread holds one policy clone and cannot honor
    /// per-request version pinning.
    pub fn swap_policy(&self, policy: PolicyNetwork) -> u64 {
        assert!(
            self.aggregator.is_none(),
            "swap_policy is incompatible with inference batching: the aggregator \
             holds one policy clone and cannot honor per-request version pinning"
        );
        self.shared.registry.publish(policy)
    }

    /// Whether the service was built with
    /// [`ServiceConfig::with_online_training`].
    pub fn online_training_enabled(&self) -> bool {
        self.trainer.is_some()
    }

    /// A point-in-time snapshot of the online trainer's counters, or
    /// `None` when the service runs without
    /// [`ServiceConfig::with_online_training`].
    pub fn online_stats(&self) -> Option<OnlineTrainerStats> {
        self.trainer.as_ref().map(OnlineTrainer::stats)
    }

    /// Pauses the background online trainer (blocking until it
    /// acknowledges — no train step or swap is in flight afterwards).
    /// No-op when online training is off. Serving is unaffected.
    pub fn pause_online_training(&self) {
        if let Some(trainer) = &self.trainer {
            trainer.pause();
        }
    }

    /// Resumes a paused online trainer. No-op when online training is off.
    pub fn resume_online_training(&self) {
        if let Some(trainer) = &self.trainer {
            trainer.resume();
        }
    }

    /// The global admission ledger.
    pub fn budget(&self) -> &EvalBudget {
        &self.shared.budget
    }

    /// Handle to the service's persistent shared evaluation cache.
    pub fn cache(&self) -> &SharedEvalCache {
        &self.shared.cache
    }

    /// Snapshot of the serving statistics.
    pub fn stats(&self) -> ServiceStats {
        let pending = self
            .shared
            .state
            .lock()
            .expect("service state poisoned")
            .depth as u64;
        ServiceStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            stopped: self.shared.stopped.load(Ordering::Relaxed),
            skipped: self.shared.skipped.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            pending,
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
            budget_spent: self.shared.budget.spent(),
            budget_cap: self.shared.budget.cap(),
        }
    }

    /// Snapshot of the overload-observability surface (see
    /// [`ServiceMetrics`]).
    pub fn metrics(&self) -> ServiceMetrics {
        let (queue_depth, clients) = {
            let state = self.shared.state.lock().expect("service state poisoned");
            (state.depth as u64, state.lanes.len() as u64)
        };
        let inference = self.aggregator_stats().unwrap_or_default();
        let online_stats = self.online_stats().unwrap_or_default();
        let s = &self.shared;
        ServiceMetrics {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            stopped: s.stopped.load(Ordering::Relaxed),
            skipped: s.skipped.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            admitted: s.admitted.load(Ordering::Relaxed),
            overflow_rejects: s.overflow.load(Ordering::Relaxed),
            deadline_sheds: s.sheds.load(Ordering::Relaxed),
            deadline_stops: s.deadline_stops.load(Ordering::Relaxed),
            quota_deferrals: s.quota_deferrals.load(Ordering::Relaxed),
            budget_skips: s.budget_skips.load(Ordering::Relaxed),
            queue_depth,
            queue_high_water: s.queue_high_water.load(Ordering::Relaxed),
            clients,
            queue_p50_s: s.queue_hist.quantile(0.5),
            queue_p99_s: s.queue_hist.quantile(0.99),
            queue_mean_s: s.queue_hist.mean(),
            service_p50_s: s.service_hist.quantile(0.5),
            service_p99_s: s.service_hist.quantile(0.99),
            service_mean_s: s.service_hist.mean(),
            queue_hist_buckets: s.queue_hist.buckets(),
            service_hist_buckets: s.service_hist.buckets(),
            cache_hits: s.cache.hits(),
            cache_misses: s.cache.misses(),
            cache_insertions: s.cache.insertions(),
            cache_evictions: s.cache.evictions(),
            cache_promotions: s.cache.promotions(),
            cache_len: s.cache.len() as u64,
            cache_capacity: s.cache.capacity() as u64,
            cache_restored: s.cache_restored,
            budget_spent: s.budget.spent(),
            budget_cap: s.budget.cap(),
            inference_batches: inference.batches,
            inference_rows: inference.rows,
            inference_rows_per_batch_mean: inference.mean_rows_per_batch(),
            inference_flush_size: inference.flush_size,
            inference_flush_timeout: inference.flush_timeout,
            inference_flush_idle: inference.flush_idle,
            inference_flush_drain: inference.flush_drain,
            inference_flush_inline: inference.flush_inline,
            inference_queue_wait_mean_s: inference.mean_queue_wait_s(),
            inference_rows_per_batch_buckets: if self.aggregator.is_some() {
                inference.rows_per_batch.to_vec()
            } else {
                Vec::new()
            },
            policy_version: s.registry.version(),
            policy_swaps: s.registry.swaps(),
            online_experiences_accepted: s
                .online
                .as_ref()
                .map_or(0, |online| online.stream.accepted()),
            online_experiences_dropped: s
                .online
                .as_ref()
                .map_or(0, |online| online.stream.dropped()),
            online_train_steps: online_stats.train_steps,
            online_gate_rejects: online_stats.gate_rejects,
        }
    }

    /// A point-in-time snapshot of the inference aggregator's counters
    /// (batches, rows, flush reasons, queue waits), or `None` when the
    /// service was built without
    /// [`ServiceConfig::with_inference_batching`].
    pub fn aggregator_stats(&self) -> Option<AggregatorStats> {
        self.aggregator.as_ref().map(InferenceAggregator::stats)
    }

    /// Whether the service records a structured trace
    /// ([`ServiceConfig::with_tracing`]).
    pub fn tracing_enabled(&self) -> bool {
        self.shared.recorder.is_some()
    }

    /// A point-in-time merged snapshot of the trace recorder's rings
    /// (submit side + every worker, sorted by timestamp), or `None` when
    /// the service was built without [`ServiceConfig::with_tracing`].
    /// Non-destructive: the recorder keeps recording; snapshot again
    /// later for more events.
    pub fn trace_snapshot(&self) -> Option<TraceSnapshot> {
        self.shared
            .recorder
            .as_ref()
            .map(|recorder| recorder.snapshot())
    }

    /// The unified Prometheus-style text exposition: every
    /// [`ServiceMetrics`] series (serving counters, queue gauges, raw
    /// latency histograms) plus the cache and budget gauges, in one
    /// [`MetricsRegistry`]. Always available — tracing need not be on.
    pub fn prometheus(&self) -> String {
        let mut registry = MetricsRegistry::new();
        self.metrics().register(&mut registry);
        registry.to_prometheus()
    }

    /// Runs a *borrowed* custom [`Searcher`] on one module, synchronously,
    /// against the service's policy and persistent cache — the entry point
    /// for searcher objects (baseline adapters, hand-built portfolios) that
    /// have no [`SearchSpec`] and therefore cannot be queued. The seed is
    /// passed to the searcher verbatim.
    pub fn run_searcher(
        &self,
        searcher: &dyn Searcher<PolicyNetwork>,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome {
        let jobs = [SearchJob::new(module, searcher, seed)];
        let snapshot = self.shared.registry.checkout();
        let mut report = SearchDriver::new(1).run_jobs(&self.template, &snapshot.policy, &jobs);
        report.outcomes.remove(0)
    }

    /// Runs a borrowed custom [`Searcher`] over a module batch through
    /// [`SearchDriver`] — the driver is the engine *underneath* the queued
    /// path too, so this shares the same persistent cache and the same
    /// worker-count-invariance contract. Seeds are derived per module index
    /// from `base_seed` exactly like [`SearchDriver::run`].
    pub fn run_searcher_batch(
        &self,
        searcher: &dyn Searcher<PolicyNetwork>,
        modules: &[Module],
        base_seed: u64,
        workers: usize,
    ) -> BatchSearchReport {
        let snapshot = self.shared.registry.checkout();
        SearchDriver::new(workers).with_seed(base_seed).run(
            &self.template,
            &snapshot.policy,
            &searcher,
            modules,
        )
    }

    /// Initiates shutdown and blocks until every queued request has been
    /// served and all workers have exited. Called automatically on drop.
    /// Requests submitted after shutdown begins are answered
    /// [`ResponseStatus::Rejected`] with a backpressure reason.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("service state poisoned");
            if state.shutdown {
                return;
            }
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // After the workers: nothing feeds the experience stream anymore,
        // so the trainer can stop without losing late experiences it might
        // still want to drain.
        if let Some(trainer) = &mut self.trainer {
            trainer.shutdown();
        }
        // Only after every worker exited: no client can be blocked on a
        // reply, so draining and joining the inference thread is safe.
        if let Some(aggregator) = &mut self.aggregator {
            aggregator.shutdown();
        }
        // Quiesced: persist the cache for the next process. Best effort —
        // a failed write costs the next start its warmth, nothing else.
        if let Some(path) = &self.shared.cache_snapshot {
            let _ = self.shared.cache.snapshot_to(path);
        }
    }
}

impl Drop for OptimizationService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for OptimizationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptimizationService")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Submit-side probe (ring 0 of the recorder) scoped to request `id`, or
/// the inert probe when tracing is off. Trace ids are `id + 1` so an id
/// of `0` on the wire still means "untraced".
fn submit_probe(shared: &ServiceShared, id: u64) -> ProbeRef {
    match &shared.recorder {
        Some(recorder) => recorder.probe(0).with_trace(id + 1),
        None => ProbeRef::none(),
    }
}

fn worker_loop(
    shared: Arc<ServiceShared>,
    mut env: OptimizationEnv,
    mut policy: PolicyNetwork,
    client: Option<AggregatorClient>,
    worker: usize,
) {
    // Worker `w` owns ring `1 + w` exclusively, so its writes never
    // contend with other workers or the submit side.
    let probe = match &shared.recorder {
        Some(recorder) => recorder.probe(worker + 1),
        None => ProbeRef::none(),
    };
    // The worker caches one policy clone and the version it came from;
    // `execute` re-clones from the job's pinned snapshot only when the
    // version changed since the last run (swaps are rare, clones are not
    // free).
    let mut policy_version = 0u64;
    loop {
        let popped = {
            let mut state = shared.state.lock().expect("service state poisoned");
            loop {
                // Shutdown drains the queue even while paused, so dropping
                // a paused service still answers every request.
                if state.shutdown || !state.paused {
                    match state.pop_next(shared.client_quota) {
                        Popped::Job(job, lane) => break Some((job, lane)),
                        Popped::Blocked => {
                            // Work is queued but every lane is at quota:
                            // a completion will notify this condvar.
                            shared.quota_deferrals.fetch_add(1, Ordering::Relaxed);
                        }
                        Popped::Idle => {
                            if state.shutdown {
                                break None;
                            }
                        }
                    }
                }
                state = shared.work.wait(state).expect("service state poisoned");
            }
        };
        match popped {
            Some((job, lane)) => {
                execute(
                    &shared,
                    &mut env,
                    &mut policy,
                    &mut policy_version,
                    client.as_ref(),
                    job,
                    &probe,
                );
                shared.state.lock().expect("service state poisoned").lanes[lane].in_flight -= 1;
                // Wake quota-blocked dispatchers (and the shutdown drain).
                shared.work.notify_all();
            }
            None => return,
        }
    }
}

/// Admission + execution of one dequeued request (see the module docs for
/// the lifecycle). Always fills the job's response slot, and always
/// reconciles the job's budget reservation: refunded in full when nothing
/// ran, adjusted to the real spend after a search (a panicked search keeps
/// its reservation charged — the estimate is the best available bound on
/// what it consumed before dying).
fn execute(
    shared: &ServiceShared,
    env: &mut OptimizationEnv,
    policy: &mut PolicyNetwork,
    policy_version: &mut u64,
    client: Option<&AggregatorClient>,
    job: QueuedJob,
    worker_probe: &ProbeRef,
) {
    // Serve on the snapshot the request was admitted with — never on
    // whatever the registry publishes later.
    if job.policy.version != *policy_version {
        *policy = job.policy.policy.clone();
        *policy_version = job.policy.version;
    }
    let queue_s = job.submitted.elapsed().as_secs_f64();
    shared.queue_hist.record(queue_s);
    let probe = worker_probe.with_trace(job.id + 1);
    let trace_id = probe.trace_id_if_enabled();
    let queue_us = (queue_s * 1e6) as u64;
    probe.emit(EventKind::Dispatched, None, [queue_us, 0, 0]);
    let skeleton = |status: ResponseStatus, error: Option<String>| OptimizationResponse {
        id: job.id,
        module: job.request.module.name().to_string(),
        searcher: job.request.spec.name(),
        status,
        outcome: None,
        error,
        evaluations: 0,
        cache_hits: 0,
        queue_s,
        service_s: 0.0,
        trace_id,
        policy_version: job.policy.version,
    };

    // --- dequeue admission -------------------------------------------
    if job.stop.claimant().is_some_and(|rank| rank < RUN_RANK) {
        shared.budget.refund(job.reserved);
        shared.skipped.fetch_add(1, Ordering::Relaxed);
        probe.emit(EventKind::CancelledInQueue, None, [queue_us, 0, 0]);
        job.slot.fill(skeleton(
            ResponseStatus::Skipped,
            Some("cancelled while queued".to_string()),
        ));
        return;
    }
    if job.stop.expired() {
        shared.budget.refund(job.reserved);
        shared.sheds.fetch_add(1, Ordering::Relaxed);
        shared.skipped.fetch_add(1, Ordering::Relaxed);
        let deadline_s = job.request.deadline.map_or(0.0, |d| d.as_secs_f64());
        probe.emit(
            EventKind::Shed,
            None,
            [queue_us, (deadline_s * 1e6) as u64, 0],
        );
        job.slot.fill(skeleton(
            ResponseStatus::Skipped,
            Some(format!(
                "deadline of {deadline_s:.3}s expired after {queue_s:.3}s in the queue; \
                 request shed at dequeue"
            )),
        ));
        return;
    }
    if let Err(problem) = job.request.spec.try_validate() {
        shared.budget.refund(job.reserved);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        probe.emit(EventKind::Rejected, Some("invalid_spec"), [0, 0, 0]);
        job.slot.fill(skeleton(
            ResponseStatus::Rejected,
            Some(format!("invalid search spec: {problem}")),
        ));
        return;
    }
    if let Some(config) = &job.request.env {
        if let Err(problem) = config.try_validate() {
            shared.budget.refund(job.reserved);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            probe.emit(EventKind::Rejected, Some("invalid_env"), [0, 0, 0]);
            job.slot.fill(skeleton(
                ResponseStatus::Rejected,
                Some(format!("invalid environment override: {problem}")),
            ));
            return;
        }
        // The service policy's layer and head sizes are fixed by the
        // service environment; an override that changes the observation or
        // action shape cannot run against it.
        let base = env.config();
        if config.feature_len() != base.feature_len()
            || config.max_loops != base.max_loops
            || config.num_tile_candidates() != base.num_tile_candidates()
            || config.interchange_mode != base.interchange_mode
            || config.action_space_mode != base.action_space_mode
        {
            shared.budget.refund(job.reserved);
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            probe.emit(EventKind::Rejected, Some("shape_mismatch"), [0, 0, 0]);
            job.slot.fill(skeleton(
                ResponseStatus::Rejected,
                Some(
                    "environment override changes the observation/action shape the \
                     service policy was built for (only shape-preserving fields such \
                     as reward_mode and noise_seed may differ)"
                        .to_string(),
                ),
            ));
            return;
        }
    }
    shared.admitted.fetch_add(1, Ordering::Relaxed);

    // --- execution ---------------------------------------------------
    // An override request runs on a fresh environment that joins the
    // service's shared table (the cache is keyed by module/schedule
    // fingerprints, so entries are config-independent).
    let mut override_env;
    let run_env: &mut OptimizationEnv = match &job.request.env {
        Some(config) => {
            override_env = OptimizationEnv::new(config.clone(), env.cost_model().clone());
            override_env.replace_cache(EvalCache::with_shared_backend(shared.cache.clone()));
            &mut override_env
        }
        None => env,
    };
    // Scope the environment's probe to this request: searcher phase
    // events and cache hit/miss events recorded during the run carry its
    // trace id. Purely observational — emission never touches RNG state
    // or control flow, so traced and untraced runs are bit-identical.
    run_env.set_probe(probe.clone());
    let searcher_name = job.request.spec.name();
    probe.emit(
        EventKind::RunBegin,
        Some(&searcher_name),
        [job.reserved, job.request.seed, 0],
    );
    let start = Instant::now();
    // Panic isolation: a search that panics (e.g. on a malformed module no
    // validation anticipated) must become an error *response*, never a
    // dead worker with a forever-blocked client. State safety: the
    // environment is reset at the start of every search and the policy's
    // scratch buffers are overwritten by every forward pass, so the worker
    // keeps serving after a caught panic.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match client {
            // Batching on: route every policy call through the shared
            // aggregator. The run guard registers this in-flight run so
            // the aggregator's idle rule knows how many runs can still
            // contribute rows to the batch under formation.
            Some(client) => {
                let searcher = job.request.spec.build::<AggregatorClient>();
                let mut client = client.clone();
                let _guard = client.run_guard();
                searcher.search_with_stop(
                    run_env,
                    &mut client,
                    &job.request.module,
                    job.request.seed,
                    RUN_RANK,
                    &job.stop,
                )
            }
            None => {
                let searcher = job.request.spec.build::<PolicyNetwork>();
                searcher.search_with_stop(
                    run_env,
                    policy,
                    &job.request.module,
                    job.request.seed,
                    RUN_RANK,
                    &job.stop,
                )
            }
        }
    }));
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            probe.emit(EventKind::RunEnd, Some("panicked"), [3, 0, 0]);
            job.slot.fill(skeleton(
                ResponseStatus::Rejected,
                Some(format!("search panicked: {message}")),
            ));
            return;
        }
    };
    let service_s = start.elapsed().as_secs_f64();
    shared.service_hist.record(service_s);
    // Reconcile the reservation to the real spend.
    let actual = outcome.total_lookups() as u64;
    if actual >= job.reserved {
        shared.budget.charge(actual - job.reserved);
    } else {
        shared.budget.refund(job.reserved - actual);
    }

    let cancelled = job.stop.claimant().is_some_and(|rank| rank < RUN_RANK);
    let (status, error) = if cancelled {
        shared.stopped.fetch_add(1, Ordering::Relaxed);
        (ResponseStatus::Stopped, None)
    } else if job.stop.expired() {
        shared.stopped.fetch_add(1, Ordering::Relaxed);
        shared.deadline_stops.fetch_add(1, Ordering::Relaxed);
        let deadline_s = job.request.deadline.map_or(0.0, |d| d.as_secs_f64());
        (
            ResponseStatus::Stopped,
            Some(format!(
                "deadline of {deadline_s:.3}s passed mid-run; best-so-far returned"
            )),
        )
    } else {
        shared.completed.fetch_add(1, Ordering::Relaxed);
        (ResponseStatus::Completed, None)
    };
    let status_code = match status {
        ResponseStatus::Completed => 0u64,
        ResponseStatus::Stopped => 1,
        ResponseStatus::Skipped => 2,
        ResponseStatus::Rejected => 3,
    };
    probe.emit(
        EventKind::RunEnd,
        None,
        [
            status_code,
            outcome.evaluations as u64,
            outcome.cache_hits as u64,
        ],
    );
    // Feed served traffic back to the online trainer. Sampling-gated so a
    // disabled subsystem costs the hot path exactly one branch; a full
    // stream drops (and counts) rather than blocks.
    if status == ResponseStatus::Completed {
        if let Some(online) = &shared.online {
            let n = online.sample_counter.fetch_add(1, Ordering::Relaxed);
            if n % online.sample_every == 0 {
                online.stream.push(Experience {
                    module: job.request.module.clone(),
                    module_fingerprint: module_fingerprint(&job.request.module),
                    searcher: job.request.spec.name(),
                    seed: job.request.seed,
                    actions: outcome.best_actions.clone(),
                    speedup: outcome.speedup,
                    policy_version: job.policy.version,
                });
                probe.emit(
                    EventKind::ExperienceEnqueued,
                    None,
                    [
                        job.policy.version,
                        online.stream.accepted(),
                        online.stream.dropped(),
                    ],
                );
            }
        }
    }
    let mut response = skeleton(status, error);
    response.evaluations = outcome.evaluations;
    response.cache_hits = outcome.cache_hits;
    response.service_s = service_s;
    response.outcome = Some(outcome);
    job.slot.fill(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_agent::PolicyHyperparams;
    use mlir_rl_ir::ModuleBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn policy() -> PolicyNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        PolicyNetwork::new(
            EnvConfig::small(),
            PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            },
            &mut rng,
        )
    }

    fn module(size: u64) -> Module {
        let mut b = ModuleBuilder::new(format!("mm{size}"));
        let a = b.argument("A", vec![size, size]);
        let w = b.argument("B", vec![size, size]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    }

    #[test]
    fn greedy_request_round_trips() {
        let service = OptimizationService::new(ServiceConfig::quick(), policy());
        let response = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(7))
            .wait();
        assert_eq!(response.status, ResponseStatus::Completed);
        let outcome = response.outcome.as_ref().expect("completed");
        assert!(outcome.speedup > 0.0);
        assert_eq!(response.evaluations, outcome.evaluations);
        assert!(response.queue_s >= 0.0 && response.service_s > 0.0);
        assert!(response.error.is_none());
        let stats = service.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.pending, 0);
        // Reconciliation nets the budget back to the real spend.
        assert_eq!(stats.budget_spent, response.total_lookups() as u64);
    }

    #[test]
    fn malformed_spec_and_env_are_rejected_not_fatal() {
        let service = OptimizationService::new(ServiceConfig::quick(), policy());
        let bad_spec = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::beam(0)))
            .wait();
        assert_eq!(bad_spec.status, ResponseStatus::Rejected);
        assert!(bad_spec.error.as_ref().unwrap().contains("beam width"));
        assert!(bad_spec.outcome.is_none());

        let mut bad_env = EnvConfig::small();
        bad_env.tile_candidates = vec![4, 8];
        let rejected = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy).with_env(bad_env))
            .wait();
        assert_eq!(rejected.status, ResponseStatus::Rejected);
        assert!(rejected.error.as_ref().unwrap().contains("no tiling"));

        // The service survived both and still serves good requests.
        let ok = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy))
            .wait();
        assert_eq!(ok.status, ResponseStatus::Completed);
        assert_eq!(service.stats().rejected, 2);
        // Both rejections refunded their reservations in full.
        assert_eq!(
            service.stats().budget_spent,
            ok.total_lookups() as u64,
            "rejected requests must not leak budget reservations"
        );
    }

    #[test]
    fn cancelled_while_paused_is_skipped() {
        let service = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let keep = service.submit(OptimizationRequest::new(module(64), SearchSpec::Greedy));
        let cancel = service.submit(OptimizationRequest::new(module(96), SearchSpec::Greedy));
        cancel.cancel();
        assert!(keep.try_response().is_none(), "paused service must not run");
        service.resume();
        let kept = keep.wait();
        let cancelled = cancel.wait();
        assert_eq!(kept.status, ResponseStatus::Completed);
        assert_eq!(cancelled.status, ResponseStatus::Skipped);
        assert!(cancelled
            .error
            .as_ref()
            .unwrap()
            .contains("cancelled while queued"));
        assert_eq!(cancelled.total_lookups(), 0);
    }

    #[test]
    fn exhausted_budget_skips_in_submission_order() {
        // Cap the budget at exactly the first request's reservation
        // estimate: request 1 is admitted at submit (spend 0 < cap) and
        // charges the whole cap; requests 2 and 3 are refused *at submit*,
        // before any worker runs — the skip set is a pure function of the
        // submission sequence, not of load or worker count.
        let est = SearchSpec::Greedy.cost_estimate(&EnvConfig::small(), &module(64));
        let service = OptimizationService::new(
            ServiceConfig::quick().with_eval_budget(est).paused(),
            policy(),
        );
        let pending = service.submit_batch(vec![
            OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(3),
            OptimizationRequest::new(module(96), SearchSpec::Greedy).with_seed(4),
            OptimizationRequest::new(module(128), SearchSpec::Greedy).with_seed(5),
        ]);
        // Budget decisions are already made: later requests answered
        // immediately, while the service is still paused.
        for late in &pending[1..] {
            let response = late.try_response().expect("skipped at submit");
            assert_eq!(response.status, ResponseStatus::Skipped);
            assert!(response
                .error
                .as_ref()
                .unwrap()
                .contains("budget exhausted"));
            assert_eq!(response.total_lookups(), 0);
        }
        service.resume();
        let first = pending[0].wait();
        assert_eq!(first.status, ResponseStatus::Completed);
        // Reconciliation nets the ledger to the real spend, which the
        // estimate upper-bounds.
        assert!(service.budget().spent() <= est);
        assert_eq!(service.budget().spent(), first.total_lookups() as u64);
        assert_eq!(service.metrics().budget_skips, 2);
    }

    #[test]
    fn bounded_queue_rejects_overflow_immediately() {
        // Paused 1-worker service, capacity 2: the third submit is
        // answered Rejected synchronously — the submitter is never
        // blocked and the queue never grows past its bound.
        let service = OptimizationService::new(
            ServiceConfig::quick().with_queue_capacity(2).paused(),
            policy(),
        );
        let a = service.submit(OptimizationRequest::new(module(64), SearchSpec::Greedy));
        let b = service.submit(OptimizationRequest::new(module(96), SearchSpec::Greedy));
        let c = service.submit(OptimizationRequest::new(module(128), SearchSpec::Greedy));
        let rejected = c.try_response().expect("rejected synchronously");
        assert_eq!(rejected.status, ResponseStatus::Rejected);
        let reason = rejected.error.as_deref().unwrap();
        assert!(reason.starts_with(BACKPRESSURE_PREFIX), "got {reason:?}");
        assert!(reason.contains("queue full (capacity 2)"));
        // Backpressure text is excluded from the fingerprint, so two
        // overflows of different instantaneous depth still match.
        let mut other = rejected.clone();
        other.error = Some(format!("{BACKPRESSURE_PREFIX}queue full (capacity 7)"));
        assert_eq!(rejected.fingerprint(), other.fingerprint());
        let metrics = service.metrics();
        assert_eq!(metrics.overflow_rejects, 1);
        assert_eq!(metrics.queue_depth, 2);
        assert_eq!(metrics.queue_high_water, 2);
        service.resume();
        assert_eq!(a.wait().status, ResponseStatus::Completed);
        assert_eq!(b.wait().status, ResponseStatus::Completed);
        // The overflow reject never occupied queue memory.
        assert_eq!(service.metrics().queue_high_water, 2);
    }

    #[test]
    fn expired_deadline_is_shed_at_dequeue() {
        let service = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let doomed = service.submit(
            OptimizationRequest::new(module(64), SearchSpec::Greedy).with_deadline(Duration::ZERO),
        );
        let fine = service.submit(OptimizationRequest::new(module(96), SearchSpec::Greedy));
        service.resume();
        let shed = doomed.wait();
        assert_eq!(shed.status, ResponseStatus::Skipped);
        assert!(shed.error.as_ref().unwrap().contains("shed at dequeue"));
        assert_eq!(shed.total_lookups(), 0);
        assert_eq!(fine.wait().status, ResponseStatus::Completed);
        let metrics = service.metrics();
        assert_eq!(metrics.deadline_sheds, 1);
        // The shed request's reservation was refunded in full.
        assert_eq!(service.budget().spent(), fine.wait().total_lookups() as u64);
    }

    #[test]
    fn weighted_lanes_serve_every_client() {
        // Two named clients with different weights plus the anonymous
        // lane, a quota of 1 in flight, 2 workers: everything completes
        // and outcomes stay seed-deterministic.
        let service = OptimizationService::new(
            ServiceConfig::quick()
                .with_workers(2)
                .with_client_quota(1)
                .with_client_weight("heavy", 3)
                .paused(),
            policy(),
        );
        let mut pending = Vec::new();
        for i in 0..3u64 {
            pending.push(
                service.submit(
                    OptimizationRequest::new(module(64), SearchSpec::Greedy)
                        .with_seed(i)
                        .with_client("heavy"),
                ),
            );
            pending.push(
                service.submit(
                    OptimizationRequest::new(module(96), SearchSpec::Greedy)
                        .with_seed(i)
                        .with_client("light"),
                ),
            );
            pending
                .push(service.submit(
                    OptimizationRequest::new(module(128), SearchSpec::Greedy).with_seed(i),
                ));
        }
        service.resume();
        let responses = wait_all(&pending);
        for response in &responses {
            assert_eq!(response.status, ResponseStatus::Completed);
        }
        let metrics = service.metrics();
        assert_eq!(metrics.clients, 3);
        assert_eq!(metrics.completed, 9);
        // Identical requests answered identically regardless of lanes.
        assert_eq!(responses[0].fingerprint(), {
            let solo = OptimizationService::new(ServiceConfig::quick(), policy());
            solo.submit(OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(0))
                .wait()
                .fingerprint()
        });
    }

    #[test]
    fn priorities_order_the_queue_without_changing_outcomes() {
        // A paused 1-worker service: the high-priority latecomer runs
        // first. Outcomes are seed-deterministic either way.
        let service = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let low = service.submit(
            OptimizationRequest::new(module(64), SearchSpec::Greedy)
                .with_seed(9)
                .with_priority(-1),
        );
        let high = service.submit(
            OptimizationRequest::new(module(96), SearchSpec::Greedy)
                .with_seed(9)
                .with_priority(5),
        );
        service.resume();
        let (low, high) = (low.wait(), high.wait());
        assert_eq!(low.status, ResponseStatus::Completed);
        assert_eq!(high.status, ResponseStatus::Completed);

        // Same requests, opposite submission order: identical fingerprints.
        let service2 = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let high2 = service2.submit(
            OptimizationRequest::new(module(96), SearchSpec::Greedy)
                .with_seed(9)
                .with_priority(5),
        );
        let low2 = service2.submit(
            OptimizationRequest::new(module(64), SearchSpec::Greedy)
                .with_seed(9)
                .with_priority(-1),
        );
        service2.resume();
        assert_eq!(low.fingerprint(), low2.wait().fingerprint());
        assert_eq!(high.fingerprint(), high2.wait().fingerprint());
    }

    #[test]
    fn env_override_shares_the_persistent_cache() {
        let service = OptimizationService::new(ServiceConfig::quick(), policy());
        // A shape-preserving override: a noise stream (searchers reseed it
        // deterministically from the request seed).
        let mut override_env = EnvConfig::small();
        override_env.noise_seed = Some(5);
        let first = service
            .submit(
                OptimizationRequest::new(module(64), SearchSpec::Greedy)
                    .with_seed(2)
                    .with_env(override_env.clone()),
            )
            .wait();
        assert_eq!(first.status, ResponseStatus::Completed);
        // The same override request again: the persistent table answers
        // (almost) everything.
        let again = service
            .submit(
                OptimizationRequest::new(module(64), SearchSpec::Greedy)
                    .with_seed(2)
                    .with_env(override_env),
            )
            .wait();
        assert!(again.cache_hits > 0, "second run must hit the shared table");
        assert_eq!(first.fingerprint(), again.fingerprint());
    }

    #[test]
    fn shape_changing_override_is_rejected_not_fatal() {
        // A schedule-length change resizes the feature vector the policy
        // was built for: admission must reject it (previously this
        // panicked a worker and hung the client).
        let service = OptimizationService::new(ServiceConfig::quick(), policy());
        let mut reshaped = EnvConfig::small();
        reshaped.max_schedule_len = 3;
        let response = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy).with_env(reshaped))
            .wait();
        assert_eq!(response.status, ResponseStatus::Rejected);
        assert!(response.error.as_ref().unwrap().contains("shape"));
        // The worker is alive and keeps serving.
        let ok = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy))
            .wait();
        assert_eq!(ok.status, ResponseStatus::Completed);
    }

    #[test]
    fn wait_timeout_returns_none_then_the_response() {
        let service = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let pending = service.submit(OptimizationRequest::new(module(64), SearchSpec::Greedy));
        assert!(
            pending.wait_timeout(Duration::from_millis(20)).is_none(),
            "paused service must time the wait out"
        );
        service.resume();
        let response = pending
            .wait_timeout(Duration::from_secs(30))
            .expect("resumed service answers well before the timeout");
        assert_eq!(response.status, ResponseStatus::Completed);
        // Once filled, every further wait_timeout returns instantly.
        assert_eq!(
            pending.wait_timeout(Duration::ZERO).map(|r| r.id),
            Some(response.id)
        );
    }

    #[test]
    fn metrics_surface_reports_latency_and_admission() {
        let service = OptimizationService::new(ServiceConfig::quick(), policy());
        for seed in 0..3 {
            let response = service
                .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(seed))
                .wait();
            assert_eq!(response.status, ResponseStatus::Completed);
        }
        let metrics = service.metrics();
        assert_eq!(metrics.submitted, 3);
        assert_eq!(metrics.admitted, 3);
        assert_eq!(metrics.completed, 3);
        assert_eq!(metrics.queue_depth, 0);
        assert!(metrics.queue_high_water >= 1);
        assert!(metrics.queue_p50_s > 0.0 && metrics.queue_p99_s >= metrics.queue_p50_s);
        assert!(metrics.service_p50_s > 0.0 && metrics.service_p99_s >= metrics.service_p50_s);
        assert!(metrics.service_mean_s > 0.0);
        assert!(metrics.cache_hit_rate() > 0.0, "repeat modules must hit");
        // The JSON rendering exposes every counter, parseably.
        let json = metrics.to_json();
        for key in [
            "\"queue_p99_s\"",
            "\"service_p99_s\"",
            "\"overflow_rejects\"",
            "\"quota_deferrals\"",
            "\"budget_cap\": null",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn zero_knobs_fail_validation_instead_of_wedging() {
        assert!(ServiceConfig::quick()
            .with_queue_capacity(0)
            .try_validate()
            .is_err());
        assert!(ServiceConfig::quick()
            .with_client_quota(0)
            .try_validate()
            .is_err());
        assert!(ServiceConfig::quick()
            .with_client_weight("a", 0)
            .try_validate()
            .is_err());
        assert!(OptimizationService::try_new(
            ServiceConfig::quick().with_queue_capacity(0),
            policy()
        )
        .is_err());
    }

    #[test]
    fn drop_drains_the_queue() {
        let mut service = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let pending = service.submit_batch(vec![
            OptimizationRequest::new(module(64), SearchSpec::Greedy),
            OptimizationRequest::new(module(96), SearchSpec::beam(2)),
        ]);
        // Shut down while paused: every queued request is still answered.
        service.shutdown();
        for p in &pending {
            assert!(p.try_response().is_some(), "shutdown must drain the queue");
        }
    }

    #[test]
    fn submit_after_shutdown_is_backpressure_rejected() {
        let mut service = OptimizationService::new(ServiceConfig::quick(), policy());
        service.shutdown();
        let late = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy))
            .wait();
        assert_eq!(late.status, ResponseStatus::Rejected);
        assert!(late
            .error
            .as_deref()
            .unwrap()
            .starts_with(BACKPRESSURE_PREFIX));
    }

    #[test]
    fn zero_batching_knobs_fail_validation_instead_of_wedging() {
        assert!(ServiceConfig::quick()
            .with_inference_batching(0, 200)
            .try_validate()
            .is_err());
        assert!(ServiceConfig::quick()
            .with_inference_batching(16, 0)
            .try_validate()
            .is_err());
        assert!(OptimizationService::try_new(
            ServiceConfig::quick().with_inference_batching(0, 0),
            policy()
        )
        .is_err());
        assert!(ServiceConfig::quick()
            .with_inference_batching(16, 200)
            .try_validate()
            .is_ok());
    }

    /// The tentpole determinism guarantee at the service level: routing
    /// every worker's inference through the shared aggregator leaves all
    /// response payloads identical to the direct per-worker path.
    #[test]
    fn batched_responses_are_identical_to_direct_responses() {
        let requests = || {
            vec![
                OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(7),
                OptimizationRequest::new(module(96), SearchSpec::beam(2)).with_seed(8),
                OptimizationRequest::new(module(64), SearchSpec::mcts(6, 2)).with_seed(9),
                OptimizationRequest::new(module(128), SearchSpec::beam(3)).with_seed(10),
            ]
        };
        let run = |config: ServiceConfig| {
            let service = OptimizationService::new(config, policy());
            let responses: Vec<OptimizationResponse> = service
                .submit_batch(requests())
                .into_iter()
                .map(|p| p.wait())
                .collect();
            (responses, service.metrics())
        };
        let (direct, direct_metrics) = run(ServiceConfig::quick().with_workers(2));
        let (batched, batched_metrics) = run(ServiceConfig::quick()
            .with_workers(2)
            .with_inference_batching(16, 500));
        for (d, b) in direct.iter().zip(&batched) {
            assert_eq!(d.status, ResponseStatus::Completed);
            assert_eq!(
                d.fingerprint(),
                b.fingerprint(),
                "aggregated inference changed the result for {}",
                d.module
            );
            assert_eq!(d.outcome, b.outcome);
            assert_eq!(d.evaluations, b.evaluations);
        }
        assert_eq!(direct_metrics.inference_batches, 0);
        assert!(direct_metrics.inference_rows_per_batch_buckets.is_empty());
        assert!(
            batched_metrics.inference_batches > 0,
            "batching on must form at least one batch"
        );
        assert_eq!(
            batched_metrics
                .inference_rows_per_batch_buckets
                .iter()
                .sum::<u64>(),
            batched_metrics.inference_batches,
            "every batch lands in exactly one rows-per-batch bucket"
        );
        assert!(batched_metrics.inference_rows >= batched_metrics.inference_batches);
    }

    /// `max_batch = 1` degenerates to one group per flush — bitwise the
    /// direct path — and size/timeout configurations agree per response.
    #[test]
    fn flush_policies_agree_on_every_response() {
        let requests = || {
            vec![
                OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(3),
                OptimizationRequest::new(module(96), SearchSpec::beam(2)).with_seed(4),
            ]
        };
        let run = |config: ServiceConfig| -> Vec<u64> {
            let service = OptimizationService::new(config, policy());
            service
                .submit_batch(requests())
                .into_iter()
                .map(|p| p.wait().fingerprint())
                .collect()
        };
        let direct = run(ServiceConfig::quick());
        // Degenerate size flush, generous timeout.
        let single = run(ServiceConfig::quick().with_inference_batching(1, 1_000_000));
        // Size-dominated: batches fill before the timeout fires.
        let sized = run(ServiceConfig::quick()
            .with_workers(2)
            .with_inference_batching(64, 1_000_000));
        // Timeout-dominated: a tiny wait forces frequent flushes.
        let timed = run(ServiceConfig::quick()
            .with_workers(2)
            .with_inference_batching(64, 1));
        assert_eq!(direct, single);
        assert_eq!(direct, sized);
        assert_eq!(direct, timed);
    }

    #[test]
    fn aggregator_metrics_reach_json_and_prometheus() {
        let service = OptimizationService::new(
            ServiceConfig::quick()
                .with_workers(2)
                .with_inference_batching(16, 500),
            policy(),
        );
        for p in service.submit_batch(vec![
            OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(1),
            OptimizationRequest::new(module(96), SearchSpec::beam(2)).with_seed(2),
        ]) {
            assert_eq!(p.wait().status, ResponseStatus::Completed);
        }
        let stats = service.aggregator_stats().expect("batching enabled");
        assert!(stats.batches > 0 && stats.rows >= stats.batches);
        let metrics = service.metrics();
        assert_eq!(metrics.inference_batches, stats.batches);
        assert!(metrics.inference_rows_per_batch_mean >= 1.0);
        let json = metrics.to_json();
        for key in [
            "\"inference_batches\"",
            "\"inference_rows\"",
            "\"inference_rows_per_batch_mean\"",
            "\"inference_flush_size\"",
            "\"inference_flush_timeout\"",
            "\"inference_flush_idle\"",
            "\"inference_flush_drain\"",
            "\"inference_flush_inline\"",
            "\"inference_queue_wait_mean_s\"",
            "\"inference_rows_per_batch_buckets\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = service.prometheus();
        for series in [
            "mlir_rl_inference_batches_total",
            "mlir_rl_inference_rows_total",
            "mlir_rl_inference_rows_per_batch_mean",
            "mlir_rl_inference_rows_per_batch_bucket",
            "mlir_rl_inference_rows_per_batch_count",
        ] {
            assert!(text.contains(series), "missing {series} in exposition");
        }
    }

    #[test]
    fn batched_traces_carry_batch_formed_events() {
        let mut service = OptimizationService::new(
            ServiceConfig::quick()
                .with_workers(2)
                .with_inference_batching(16, 500)
                .with_tracing(4096),
            policy(),
        );
        for p in service.submit_batch(vec![
            OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(5),
            OptimizationRequest::new(module(96), SearchSpec::beam(2)).with_seed(6),
        ]) {
            assert_eq!(p.wait().status, ResponseStatus::Completed);
        }
        service.shutdown();
        let snapshot = service.trace_snapshot().expect("tracing enabled");
        let formed: Vec<_> = snapshot
            .events
            .iter()
            .filter(|e| e.kind == EventKind::BatchFormed)
            .collect();
        assert!(
            !formed.is_empty(),
            "batching with tracing must record batch_formed events"
        );
        for event in formed {
            assert!(event.args[0] >= 1, "a batch has at least one row");
            assert!(event.args[1] >= 1, "a batch has at least one group");
        }
    }

    #[test]
    fn cache_config_knobs_validate() {
        assert!(ServiceConfig::quick()
            .with_cache_capacity(0)
            .try_validate()
            .is_err());
        assert!(ServiceConfig::quick()
            .with_cache_snapshot("")
            .try_validate()
            .is_err());
        assert!(ServiceConfig::quick()
            .with_cache_capacity(8)
            .with_cache_snapshot("/tmp/cache.snap")
            .try_validate()
            .is_ok());
    }

    /// Serves the same small request stream and returns its fingerprints.
    fn serve_stream(service: &OptimizationService) -> Vec<u64> {
        let pending = service.submit_batch(
            [48u64, 64, 80, 96, 48, 64]
                .iter()
                .enumerate()
                .map(|(i, size)| {
                    OptimizationRequest::new(module(*size), SearchSpec::Greedy).with_seed(i as u64)
                })
                .collect(),
        );
        pending
            .into_iter()
            .map(|p| {
                let response = p.wait();
                assert_eq!(response.status, ResponseStatus::Completed);
                response.fingerprint()
            })
            .collect()
    }

    #[test]
    fn tiny_cache_evicts_entry_wise_at_identical_responses() {
        let roomy = OptimizationService::new(ServiceConfig::quick(), policy());
        let want = serve_stream(&roomy);
        assert_eq!(roomy.metrics().cache_evictions, 0);

        let tiny =
            OptimizationService::new(ServiceConfig::quick().with_cache_capacity(4), policy());
        let got = serve_stream(&tiny);
        assert_eq!(got, want, "eviction must never change responses");
        let metrics = tiny.metrics();
        assert_eq!(metrics.cache_capacity, 4);
        assert!(metrics.cache_len <= 4, "the bound is global and exact");
        assert!(metrics.cache_evictions > 0, "churn must show in metrics");
        assert_eq!(
            metrics.cache_insertions - metrics.cache_evictions,
            metrics.cache_len
        );
        // Accounting contract: every lookup is exactly one hit or miss.
        assert_eq!(
            metrics.cache_hits + metrics.cache_misses,
            roomy.metrics().cache_hits + roomy.metrics().cache_misses,
            "eviction changes the hit/miss split, never the lookup count"
        );
    }

    #[test]
    fn snapshot_restart_restores_warmth_bit_identically() {
        let path = std::env::temp_dir().join(format!(
            "mlir-rl-service-restart-{}.snap",
            std::process::id()
        ));
        let snapshot = path.to_string_lossy().into_owned();
        std::fs::remove_file(&path).ok();

        // First process: cold start (the snapshot file does not exist yet),
        // serve, persist at shutdown.
        let mut first = OptimizationService::new(
            ServiceConfig::quick().with_cache_snapshot(&snapshot),
            policy(),
        );
        assert_eq!(first.metrics().cache_restored, 0, "nothing to restore yet");
        let want = serve_stream(&first);
        let cold = first.metrics();
        assert!(cold.cache_misses > 0, "a cold start runs the estimator");
        first.shutdown();
        assert!(path.exists(), "shutdown must write the snapshot");

        // Second process: restores the previous warmth before serving and
        // beats the cold hit-rate at bit-identical responses.
        let restarted = OptimizationService::new(
            ServiceConfig::quick().with_cache_snapshot(&snapshot),
            policy(),
        );
        let metrics = restarted.metrics();
        assert!(metrics.cache_restored > 0, "warm restart restores entries");
        assert_eq!(metrics.cache_len, metrics.cache_restored);
        let got = serve_stream(&restarted);
        assert_eq!(got, want, "restart must not change responses");
        let warm = restarted.metrics();
        assert!(
            warm.cache_hit_rate() > cold.cache_hit_rate(),
            "restored warmth must beat the cold start: {} vs {}",
            warm.cache_hit_rate(),
            cold.cache_hit_rate()
        );

        // The new gauges reach both exports.
        let json = warm.to_json();
        for key in [
            "\"cache_insertions\"",
            "\"cache_evictions\"",
            "\"cache_promotions\"",
            "\"cache_len\"",
            "\"cache_capacity\"",
            "\"cache_restored\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let text = restarted.prometheus();
        for series in [
            "mlir_rl_cache_insertions_total",
            "mlir_rl_cache_evictions_total",
            "mlir_rl_cache_promotions_total",
            "mlir_rl_cache_len",
            "mlir_rl_cache_capacity",
            "mlir_rl_cache_restored_entries",
        ] {
            assert!(text.contains(series), "missing {series} in exposition");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_file_cold_starts() {
        let path = std::env::temp_dir().join(format!(
            "mlir-rl-service-corrupt-{}.snap",
            std::process::id()
        ));
        std::fs::write(&path, b"definitely not a cache snapshot").unwrap();
        let service = OptimizationService::new(
            ServiceConfig::quick().with_cache_snapshot(path.to_string_lossy().into_owned()),
            policy(),
        );
        assert_eq!(
            service.metrics().cache_restored,
            0,
            "a corrupt snapshot must cold-start, not fail"
        );
        let response = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy))
            .wait();
        assert_eq!(response.status, ResponseStatus::Completed);
        std::fs::remove_file(&path).ok();
    }
}
