//! The request/response serving layer: a long-lived [`OptimizationService`]
//! in front of the trained policy.
//!
//! The paper deploys the policy as a one-shot "optimize this module" call;
//! a production deployment is a *service*: requests arrive continuously,
//! and the wins come from amortizing state across them — one persistent
//! shared evaluation cache (every request warms every later request), one
//! policy snapshot per worker, one global evaluation budget. This module
//! composes the primitives the lower layers already provide
//! ([`SharedEvalCache`] via the environment, [`EvalBudget`],
//! [`StopToken`], [`SearchDriver`]) into that serving surface:
//!
//! * [`OptimizationRequest`] — a module plus a declarative [`SearchSpec`]
//!   (greedy / beam / MCTS / random / portfolio), a seed, a priority, an
//!   optional queue deadline and an optional per-request environment
//!   override.
//! * [`OptimizationService::submit`] / [`OptimizationService::submit_batch`]
//!   — enqueue requests; a pool of long-lived worker threads admits and
//!   executes them. Every submit returns a [`PendingResponse`] handle that
//!   can wait for — or cancel — its request.
//! * [`OptimizationResponse`] — the request's [`SearchOutcome`] plus
//!   per-request accounting (evaluations / cache hits, queue and service
//!   time) and a [`ResponseStatus`].
//!
//! ## Request lifecycle
//!
//! `submit` → **queued** (priority order, FIFO within a priority) →
//! **admission** (cancellation, queue deadline, [`SearchSpec::try_validate`]
//! and [`EnvConfig::try_validate`] checks, global [`EvalBudget`] gate) →
//! **running** (the worker builds the spec's searcher and runs it with the
//! request's seed on the service's shared cache) → **responded**. A
//! malformed request is [`ResponseStatus::Rejected`]; a request that never
//! ran (cancelled in the queue, deadline expired, budget exhausted) is
//! [`ResponseStatus::Skipped`]; a request cancelled mid-run winds down at
//! its searcher's next stop boundary and reports
//! [`ResponseStatus::Stopped`] with its best-so-far — the same semantics as
//! portfolio [`mlir_rl_search::MemberStatus`] rows.
//!
//! ## Determinism
//!
//! Responses extend the search subsystem's determinism contract to the
//! request level: a request's outcome depends only on `(module, spec, seed,
//! policy, environment config)` — never on the worker count, the submission
//! order, queue priorities or what else is in flight — because cost-model
//! values are deterministic whether they hit or miss the shared cache, and
//! every searcher reseeds its noise stream from the request seed.
//! [`OptimizationResponse::fingerprint`] hashes exactly the deterministic
//! fields (accounting *counts* and timings legitimately vary with cache
//! warmth and load); the `service_api` integration test battery locks the
//! guarantee across worker counts and shuffled submission orders.
//!
//! The two *liveness* knobs are deliberately outside the guarantee, like
//! the racing portfolio's preempted-loser rows: **which** requests a queue
//! deadline expires or an exhausted [`EvalBudget`] skips depends on load
//! and worker count (concurrent workers admit requests before earlier
//! ones have charged their spend). Every request that *runs* keeps the
//! full contract; services configured without deadlines and without a
//! budget cap answer every request deterministically.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use mlir_rl_agent::PolicyNetwork;
use mlir_rl_costmodel::{CostModel, EvalBudget, EvalCache, MachineModel, SharedEvalCache};
use mlir_rl_env::{EnvConfig, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_search::{
    BatchSearchReport, SearchDriver, SearchJob, SearchOutcome, SearchSpec, Searcher, StopToken,
};

/// The rank a request's search runs at against its [`StopToken`]:
/// [`PendingResponse::cancel`] claims rank 0, which outranks the running
/// search, so stop-aware searchers wind down at their next boundary.
const RUN_RANK: usize = 1;
const CANCEL_RANK: usize = 0;

/// Static configuration of an [`OptimizationService`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Environment configuration requests run under by default (individual
    /// requests may override it with [`OptimizationRequest::with_env`]).
    pub env: EnvConfig,
    /// Machine the cost model targets.
    pub machine: MachineModel,
    /// Worker threads executing requests (at least 1).
    pub workers: usize,
    /// Global admission cap on cost-model lookups across every request the
    /// service executes (`None` = unlimited). Once the ledger is exhausted,
    /// later requests are answered [`ResponseStatus::Skipped`]. A liveness
    /// knob: spend is charged as searches *finish*, so with concurrent
    /// workers **which** request first observes exhaustion depends on
    /// timing — skip decisions are deterministic only for single-worker
    /// services (admitted requests' outcomes stay deterministic always).
    pub eval_budget: Option<u64>,
    /// Start with the workers paused: requests queue up but none executes
    /// until [`OptimizationService::resume`]. Useful for deterministic
    /// admission tests and for pre-loading a batch before serving begins.
    pub start_paused: bool,
}

impl ServiceConfig {
    /// A laptop-scale configuration (small environment, one worker).
    pub fn quick() -> Self {
        Self {
            env: EnvConfig::small(),
            machine: MachineModel::xeon_e5_2680_v4(),
            workers: 1,
            eval_budget: None,
            start_paused: false,
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the global eval-budget cap.
    pub fn with_eval_budget(mut self, cap: u64) -> Self {
        self.eval_budget = Some(cap);
        self
    }

    /// Starts the service paused (see [`ServiceConfig::start_paused`]).
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// One optimization request: a module plus everything needed to search its
/// schedule space deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationRequest {
    /// Module to optimize.
    pub module: Module,
    /// Declarative description of the search to run.
    pub spec: SearchSpec,
    /// Search seed — with the module, spec and policy, this fully
    /// determines the response's outcome.
    pub seed: u64,
    /// Scheduling priority: higher-priority requests leave the queue first
    /// (FIFO within a priority). Priorities affect *when* a request runs,
    /// never *what* it computes.
    pub priority: i32,
    /// Maximum time the request may wait in the queue; a request admitted
    /// later than this is answered [`ResponseStatus::Skipped`] instead of
    /// running stale. `None` waits indefinitely. A liveness knob —
    /// responses produced under deadline pressure are still deterministic,
    /// but *which* requests expire depends on load.
    pub deadline: Option<Duration>,
    /// Per-request environment override. Validated at admission with
    /// [`EnvConfig::try_validate`], and additionally required to preserve
    /// the observation/action *shape* the service policy was built for
    /// (fields like `reward_mode` and `noise_seed` may differ; `max_loops`,
    /// tile candidates, feature sizes may not) — a malformed or
    /// shape-changing config yields [`ResponseStatus::Rejected`] instead of
    /// a panic. The override environment still shares the service's
    /// evaluation cache.
    pub env: Option<EnvConfig>,
}

impl OptimizationRequest {
    /// A request with seed 0, default priority, no deadline and the
    /// service's environment.
    pub fn new(module: Module, spec: SearchSpec) -> Self {
        Self {
            module,
            spec,
            seed: 0,
            priority: 0,
            deadline: None,
            env: None,
        }
    }

    /// Sets the search seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the queue deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Overrides the environment configuration for this request.
    pub fn with_env(mut self, env: EnvConfig) -> Self {
        self.env = Some(env);
        self
    }
}

/// How a request left the service — the request-level analogue of
/// [`mlir_rl_search::MemberStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResponseStatus {
    /// The search ran to completion.
    Completed,
    /// The request was cancelled mid-run; the outcome is the search's
    /// best-so-far at the stop boundary (stop-unaware searchers such as
    /// greedy decoding finish their run regardless).
    Stopped,
    /// The request never ran: cancelled while queued, queue deadline
    /// expired, or the service's eval budget was exhausted. All accounting
    /// is zero; `error` says why.
    Skipped,
    /// The request was malformed (spec or environment override failed
    /// validation); `error` carries the problem. Nothing ran.
    Rejected,
}

/// The answer to one [`OptimizationRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationResponse {
    /// Service-assigned request id (submission order).
    pub id: u64,
    /// Name of the requested module.
    pub module: String,
    /// Display name of the requested searcher.
    pub searcher: String,
    /// How the request finished.
    pub status: ResponseStatus,
    /// The search outcome ([`ResponseStatus::Completed`] and
    /// [`ResponseStatus::Stopped`] only).
    pub outcome: Option<SearchOutcome>,
    /// Why the request was skipped or rejected.
    pub error: Option<String>,
    /// Estimator runs this request caused (cache misses).
    pub evaluations: usize,
    /// Lookups the shared cache served for this request.
    pub cache_hits: usize,
    /// Seconds the request waited in the queue before a worker picked it
    /// up.
    pub queue_s: f64,
    /// Seconds the search itself ran.
    pub service_s: f64,
}

impl OptimizationResponse {
    /// Speedup of the best schedule found (1.0 when nothing ran).
    pub fn speedup(&self) -> f64 {
        self.outcome.as_ref().map_or(1.0, |o| o.speedup)
    }

    /// Total cost-model lookups of the request
    /// (`evaluations + cache_hits`).
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }

    /// FNV-1a hash of exactly the fields the service's determinism
    /// guarantee covers: module, searcher, status, the rejection reason
    /// (validation messages are a deterministic function of the request),
    /// and the outcome's baseline/best estimates, speedup, action
    /// sequence, schedule and nodes expanded. Excludes the request id,
    /// timings, cache accounting *counts*, portfolio member attribution
    /// rows, and the error text of [`ResponseStatus::Skipped`] responses
    /// (skip reasons embed load-dependent measurements such as queue wait
    /// and budget spend) — those legitimately vary with submission order,
    /// load and table warmth. Two runs of the same request set produce
    /// equal fingerprints for matching requests, regardless of worker
    /// count or arrival order.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.module.as_bytes());
        h.write(self.searcher.as_bytes());
        h.write(format!("{:?}", self.status).as_bytes());
        if self.status == ResponseStatus::Rejected {
            h.write(format!("{:?}", self.error).as_bytes());
        }
        if let Some(outcome) = &self.outcome {
            for bits in [
                outcome.baseline_s.to_bits(),
                outcome.best_s.to_bits(),
                outcome.speedup.to_bits(),
                outcome.nodes_expanded as u64,
            ] {
                h.write(&bits.to_le_bytes());
            }
            h.write(format!("{:?}", outcome.best_actions).as_bytes());
            h.write(format!("{:?}", outcome.best_schedule).as_bytes());
        }
        h.finish()
    }
}

/// FNV-1a, stable across Rust releases (unlike `DefaultHasher`), so
/// fingerprints can be compared across builds and recorded in fixtures.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Handle to a submitted request: wait for the response, poll it, or
/// cancel the request.
#[derive(Debug, Clone)]
pub struct PendingResponse {
    id: u64,
    stop: StopToken,
    slot: Arc<ResponseSlot>,
}

impl PendingResponse {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response is available.
    pub fn wait(&self) -> OptimizationResponse {
        let mut ready = self.slot.ready.lock().expect("response slot poisoned");
        while ready.is_none() {
            ready = self.slot.cond.wait(ready).expect("response slot poisoned");
        }
        ready.clone().expect("checked above")
    }

    /// The response, if it is already available.
    pub fn try_response(&self) -> Option<OptimizationResponse> {
        self.slot
            .ready
            .lock()
            .expect("response slot poisoned")
            .clone()
    }

    /// Cancels the request: if it has not started it is answered
    /// [`ResponseStatus::Skipped`]; if it is running, stop-aware searchers
    /// wind down at their next boundary and the response is
    /// [`ResponseStatus::Stopped`] with the best-so-far; if it already
    /// finished, this is a no-op.
    pub fn cancel(&self) {
        self.stop.claim(CANCEL_RANK);
    }
}

/// Waits for every pending response, in handle order.
pub fn wait_all(pending: &[PendingResponse]) -> Vec<OptimizationResponse> {
    pending.iter().map(PendingResponse::wait).collect()
}

#[derive(Debug)]
struct ResponseSlot {
    ready: Mutex<Option<OptimizationResponse>>,
    cond: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            ready: Mutex::new(None),
            cond: Condvar::new(),
        })
    }

    fn fill(&self, response: OptimizationResponse) {
        let mut ready = self.ready.lock().expect("response slot poisoned");
        *ready = Some(response);
        self.cond.notify_all();
    }
}

/// A queued request plus its routing state. Ordered by (priority, FIFO):
/// the queue is a max-heap, so higher priorities pop first and equal
/// priorities pop in submission order.
struct QueuedJob {
    id: u64,
    submitted: Instant,
    request: OptimizationRequest,
    stop: StopToken,
    slot: Arc<ResponseSlot>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.request.priority == other.request.priority && self.id == other.id
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.request
            .priority
            .cmp(&other.request.priority)
            .then(other.id.cmp(&self.id))
    }
}

struct ServiceState {
    queue: BinaryHeap<QueuedJob>,
    paused: bool,
    shutdown: bool,
}

struct ServiceShared {
    state: Mutex<ServiceState>,
    work: Condvar,
    budget: EvalBudget,
    cache: SharedEvalCache,
    submitted: AtomicU64,
    completed: AtomicU64,
    stopped: AtomicU64,
    skipped: AtomicU64,
    rejected: AtomicU64,
}

/// Aggregate serving statistics, snapshot by
/// [`OptimizationService::stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceStats {
    /// Requests submitted so far.
    pub submitted: u64,
    /// Requests answered [`ResponseStatus::Completed`].
    pub completed: u64,
    /// Requests answered [`ResponseStatus::Stopped`].
    pub stopped: u64,
    /// Requests answered [`ResponseStatus::Skipped`].
    pub skipped: u64,
    /// Requests answered [`ResponseStatus::Rejected`].
    pub rejected: u64,
    /// Requests currently waiting in the queue.
    pub pending: u64,
    /// Lifetime hits of the service's persistent shared cache.
    pub cache_hits: u64,
    /// Lifetime misses (estimator runs) of the persistent shared cache.
    pub cache_misses: u64,
    /// Cost-model lookups charged against the global eval budget.
    pub budget_spent: u64,
    /// The global eval-budget cap (`None` = unlimited).
    pub budget_cap: Option<u64>,
}

impl ServiceStats {
    /// Lifetime fraction of lookups served by the persistent cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A long-lived optimization service: worker threads serving
/// [`OptimizationRequest`]s against one policy snapshot, one persistent
/// shared evaluation cache and one global [`EvalBudget`]. See the module
/// docs for the request lifecycle and the determinism guarantee.
pub struct OptimizationService {
    shared: Arc<ServiceShared>,
    template: OptimizationEnv,
    policy: PolicyNetwork,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl OptimizationService {
    /// Creates a service from a configuration and a policy snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `config.env` fails validation; use
    /// [`OptimizationService::try_new`] for a non-panicking constructor.
    pub fn new(config: ServiceConfig, policy: PolicyNetwork) -> Self {
        Self::try_new(config, policy).expect("invalid service configuration")
    }

    /// Like [`OptimizationService::new`], but a malformed configuration
    /// becomes an error instead of a panic.
    pub fn try_new(config: ServiceConfig, policy: PolicyNetwork) -> Result<Self, String> {
        config.env.try_validate()?;
        let mut env =
            OptimizationEnv::new(config.env.clone(), CostModel::new(config.machine.clone()));
        env.enable_shared_cache();
        Ok(Self::from_env_template_with(
            &env,
            policy,
            config.workers,
            config.eval_budget,
            config.start_paused,
        ))
    }

    /// Creates a service whose requests run against (a clone of) the given
    /// environment. If `env` is already in shared-cache mode the service
    /// **joins that table** — this is how the deprecated
    /// [`crate::MlirRlOptimizer`] facade keeps one warm cache across its
    /// own calls and the service's; otherwise the service starts its own
    /// table seeded with the environment's memoized entries.
    pub fn from_env_template(env: &OptimizationEnv, policy: PolicyNetwork, workers: usize) -> Self {
        Self::from_env_template_with(env, policy, workers, None, false)
    }

    fn from_env_template_with(
        env: &OptimizationEnv,
        policy: PolicyNetwork,
        workers: usize,
        eval_budget: Option<u64>,
        start_paused: bool,
    ) -> Self {
        let mut template = env.clone();
        let cache = template.enable_shared_cache();
        let budget = match eval_budget {
            Some(cap) => EvalBudget::limited(cap),
            None => EvalBudget::unlimited(),
        };
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                queue: BinaryHeap::new(),
                paused: start_paused,
                shutdown: false,
            }),
            work: Condvar::new(),
            budget,
            cache,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            stopped: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let env = template.clone();
                let policy = policy.clone();
                std::thread::spawn(move || worker_loop(shared, env, policy))
            })
            .collect();
        Self {
            shared,
            template,
            policy,
            workers,
            next_id: AtomicU64::new(0),
        }
    }

    /// Submits one request, returning a handle to wait on (or cancel).
    pub fn submit(&self, request: OptimizationRequest) -> PendingResponse {
        let pending = self.enqueue(request);
        self.shared.work.notify_one();
        pending
    }

    /// Submits a batch of requests — just N requests on the one shared
    /// cache — returning their handles in submission order.
    pub fn submit_batch(&self, requests: Vec<OptimizationRequest>) -> Vec<PendingResponse> {
        let pending: Vec<PendingResponse> = requests.into_iter().map(|r| self.enqueue(r)).collect();
        self.shared.work.notify_all();
        pending
    }

    fn enqueue(&self, request: OptimizationRequest) -> PendingResponse {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        let stop = StopToken::new();
        let slot = ResponseSlot::new();
        let pending = PendingResponse {
            id,
            stop: stop.clone(),
            slot: Arc::clone(&slot),
        };
        let job = QueuedJob {
            id,
            submitted: Instant::now(),
            request,
            stop,
            slot,
        };
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .queue
            .push(job);
        pending
    }

    /// Pauses the workers: queued requests stay queued until
    /// [`OptimizationService::resume`]. Requests already running finish.
    pub fn pause(&self) {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .paused = true;
    }

    /// Resumes a paused service.
    pub fn resume(&self) {
        self.shared
            .state
            .lock()
            .expect("service state poisoned")
            .paused = false;
        self.shared.work.notify_all();
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The policy snapshot requests are served with.
    pub fn policy(&self) -> &PolicyNetwork {
        &self.policy
    }

    /// The global admission ledger.
    pub fn budget(&self) -> &EvalBudget {
        &self.shared.budget
    }

    /// Handle to the service's persistent shared evaluation cache.
    pub fn cache(&self) -> &SharedEvalCache {
        &self.shared.cache
    }

    /// Snapshot of the serving statistics.
    pub fn stats(&self) -> ServiceStats {
        let pending = self
            .shared
            .state
            .lock()
            .expect("service state poisoned")
            .queue
            .len() as u64;
        ServiceStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            stopped: self.shared.stopped.load(Ordering::Relaxed),
            skipped: self.shared.skipped.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            pending,
            cache_hits: self.shared.cache.hits(),
            cache_misses: self.shared.cache.misses(),
            budget_spent: self.shared.budget.spent(),
            budget_cap: self.shared.budget.cap(),
        }
    }

    /// Runs a *borrowed* custom [`Searcher`] on one module, synchronously,
    /// against the service's policy and persistent cache — the entry point
    /// for searcher objects (baseline adapters, hand-built portfolios) that
    /// have no [`SearchSpec`] and therefore cannot be queued. The seed is
    /// passed to the searcher verbatim.
    pub fn run_searcher(
        &self,
        searcher: &dyn Searcher<PolicyNetwork>,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome {
        let jobs = [SearchJob::new(module, searcher, seed)];
        let mut report = SearchDriver::new(1).run_jobs(&self.template, &self.policy, &jobs);
        report.outcomes.remove(0)
    }

    /// Runs a borrowed custom [`Searcher`] over a module batch through
    /// [`SearchDriver`] — the driver is the engine *underneath* the queued
    /// path too, so this shares the same persistent cache and the same
    /// worker-count-invariance contract. Seeds are derived per module index
    /// from `base_seed` exactly like [`SearchDriver::run`].
    pub fn run_searcher_batch(
        &self,
        searcher: &dyn Searcher<PolicyNetwork>,
        modules: &[Module],
        base_seed: u64,
        workers: usize,
    ) -> BatchSearchReport {
        SearchDriver::new(workers).with_seed(base_seed).run(
            &self.template,
            &self.policy,
            &searcher,
            modules,
        )
    }

    /// Initiates shutdown and blocks until every queued request has been
    /// served and all workers have exited. Called automatically on drop.
    pub fn shutdown(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("service state poisoned");
            if state.shutdown {
                return;
            }
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for OptimizationService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for OptimizationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OptimizationService")
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

fn worker_loop(shared: Arc<ServiceShared>, mut env: OptimizationEnv, mut policy: PolicyNetwork) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("service state poisoned");
            loop {
                // Shutdown drains the queue even while paused, so dropping
                // a paused service still answers every request.
                if state.shutdown || !state.paused {
                    if let Some(job) = state.queue.pop() {
                        break Some(job);
                    }
                    if state.shutdown {
                        break None;
                    }
                }
                state = shared.work.wait(state).expect("service state poisoned");
            }
        };
        match job {
            Some(job) => execute(&shared, &mut env, &mut policy, job),
            None => return,
        }
    }
}

/// Admission + execution of one dequeued request (see the module docs for
/// the lifecycle). Always fills the job's response slot.
fn execute(
    shared: &ServiceShared,
    env: &mut OptimizationEnv,
    policy: &mut PolicyNetwork,
    job: QueuedJob,
) {
    let queue_s = job.submitted.elapsed().as_secs_f64();
    let skeleton = |status: ResponseStatus, error: Option<String>| OptimizationResponse {
        id: job.id,
        module: job.request.module.name().to_string(),
        searcher: job.request.spec.name(),
        status,
        outcome: None,
        error,
        evaluations: 0,
        cache_hits: 0,
        queue_s,
        service_s: 0.0,
    };

    // --- admission ---------------------------------------------------
    if job.stop.stops(RUN_RANK) {
        shared.skipped.fetch_add(1, Ordering::Relaxed);
        job.slot.fill(skeleton(
            ResponseStatus::Skipped,
            Some("cancelled while queued".to_string()),
        ));
        return;
    }
    if let Some(deadline) = job.request.deadline {
        if queue_s > deadline.as_secs_f64() {
            shared.skipped.fetch_add(1, Ordering::Relaxed);
            job.slot.fill(skeleton(
                ResponseStatus::Skipped,
                Some(format!(
                    "queue deadline of {:.3}s expired after {queue_s:.3}s",
                    deadline.as_secs_f64()
                )),
            ));
            return;
        }
    }
    if let Err(problem) = job.request.spec.try_validate() {
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        job.slot.fill(skeleton(
            ResponseStatus::Rejected,
            Some(format!("invalid search spec: {problem}")),
        ));
        return;
    }
    if let Some(config) = &job.request.env {
        if let Err(problem) = config.try_validate() {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            job.slot.fill(skeleton(
                ResponseStatus::Rejected,
                Some(format!("invalid environment override: {problem}")),
            ));
            return;
        }
        // The service policy's layer and head sizes are fixed by the
        // service environment; an override that changes the observation or
        // action shape cannot run against it.
        let base = env.config();
        if config.feature_len() != base.feature_len()
            || config.max_loops != base.max_loops
            || config.num_tile_candidates() != base.num_tile_candidates()
            || config.interchange_mode != base.interchange_mode
            || config.action_space_mode != base.action_space_mode
        {
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            job.slot.fill(skeleton(
                ResponseStatus::Rejected,
                Some(
                    "environment override changes the observation/action shape the \
                     service policy was built for (only shape-preserving fields such \
                     as reward_mode and noise_seed may differ)"
                        .to_string(),
                ),
            ));
            return;
        }
    }
    if shared.budget.try_admit(0).is_err() {
        shared.skipped.fetch_add(1, Ordering::Relaxed);
        job.slot.fill(skeleton(
            ResponseStatus::Skipped,
            Some(format!(
                "service eval budget exhausted ({} lookups spent)",
                shared.budget.spent()
            )),
        ));
        return;
    }

    // --- execution ---------------------------------------------------
    // An override request runs on a fresh environment that joins the
    // service's shared table (the cache is keyed by module/schedule
    // fingerprints, so entries are config-independent).
    let mut override_env;
    let run_env: &mut OptimizationEnv = match &job.request.env {
        Some(config) => {
            override_env = OptimizationEnv::new(config.clone(), env.cost_model().clone());
            override_env.replace_cache(EvalCache::with_shared_backend(shared.cache.clone()));
            &mut override_env
        }
        None => env,
    };
    let start = Instant::now();
    // Panic isolation: a search that panics (e.g. on a malformed module no
    // validation anticipated) must become an error *response*, never a
    // dead worker with a forever-blocked client. State safety: the
    // environment is reset at the start of every search and the policy's
    // scratch buffers are overwritten by every forward pass, so the worker
    // keeps serving after a caught panic.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let searcher = job.request.spec.build::<PolicyNetwork>();
        searcher.search_with_stop(
            run_env,
            policy,
            &job.request.module,
            job.request.seed,
            RUN_RANK,
            &job.stop,
        )
    }));
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            shared.rejected.fetch_add(1, Ordering::Relaxed);
            job.slot.fill(skeleton(
                ResponseStatus::Rejected,
                Some(format!("search panicked: {message}")),
            ));
            return;
        }
    };
    let service_s = start.elapsed().as_secs_f64();
    shared.budget.charge(outcome.total_lookups() as u64);

    let status = if job.stop.stops(RUN_RANK) {
        shared.stopped.fetch_add(1, Ordering::Relaxed);
        ResponseStatus::Stopped
    } else {
        shared.completed.fetch_add(1, Ordering::Relaxed);
        ResponseStatus::Completed
    };
    let mut response = skeleton(status, None);
    response.evaluations = outcome.evaluations;
    response.cache_hits = outcome.cache_hits;
    response.service_s = service_s;
    response.outcome = Some(outcome);
    job.slot.fill(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_agent::PolicyHyperparams;
    use mlir_rl_ir::ModuleBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn policy() -> PolicyNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        PolicyNetwork::new(
            EnvConfig::small(),
            PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            },
            &mut rng,
        )
    }

    fn module(size: u64) -> Module {
        let mut b = ModuleBuilder::new(format!("mm{size}"));
        let a = b.argument("A", vec![size, size]);
        let w = b.argument("B", vec![size, size]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    }

    #[test]
    fn greedy_request_round_trips() {
        let service = OptimizationService::new(ServiceConfig::quick(), policy());
        let response = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(7))
            .wait();
        assert_eq!(response.status, ResponseStatus::Completed);
        let outcome = response.outcome.as_ref().expect("completed");
        assert!(outcome.speedup > 0.0);
        assert_eq!(response.evaluations, outcome.evaluations);
        assert!(response.queue_s >= 0.0 && response.service_s > 0.0);
        assert!(response.error.is_none());
        let stats = service.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.pending, 0);
    }

    #[test]
    fn malformed_spec_and_env_are_rejected_not_fatal() {
        let service = OptimizationService::new(ServiceConfig::quick(), policy());
        let bad_spec = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::beam(0)))
            .wait();
        assert_eq!(bad_spec.status, ResponseStatus::Rejected);
        assert!(bad_spec.error.as_ref().unwrap().contains("beam width"));
        assert!(bad_spec.outcome.is_none());

        let mut bad_env = EnvConfig::small();
        bad_env.tile_candidates = vec![4, 8];
        let rejected = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy).with_env(bad_env))
            .wait();
        assert_eq!(rejected.status, ResponseStatus::Rejected);
        assert!(rejected.error.as_ref().unwrap().contains("no tiling"));

        // The service survived both and still serves good requests.
        let ok = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy))
            .wait();
        assert_eq!(ok.status, ResponseStatus::Completed);
        assert_eq!(service.stats().rejected, 2);
    }

    #[test]
    fn cancelled_while_paused_is_skipped() {
        let service = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let keep = service.submit(OptimizationRequest::new(module(64), SearchSpec::Greedy));
        let cancel = service.submit(OptimizationRequest::new(module(96), SearchSpec::Greedy));
        cancel.cancel();
        assert!(keep.try_response().is_none(), "paused service must not run");
        service.resume();
        let kept = keep.wait();
        let cancelled = cancel.wait();
        assert_eq!(kept.status, ResponseStatus::Completed);
        assert_eq!(cancelled.status, ResponseStatus::Skipped);
        assert!(cancelled
            .error
            .as_ref()
            .unwrap()
            .contains("cancelled while queued"));
        assert_eq!(cancelled.total_lookups(), 0);
    }

    #[test]
    fn exhausted_budget_skips_consistently() {
        // Measure one greedy request's spend, then cap the service budget
        // at exactly that: request 1 completes (admitted below the cap),
        // requests 2 and 3 are skipped.
        let probe = OptimizationService::new(ServiceConfig::quick(), policy());
        let spend = probe
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(3))
            .wait()
            .total_lookups() as u64;
        drop(probe);

        let service = OptimizationService::new(
            ServiceConfig::quick().with_eval_budget(spend).paused(),
            policy(),
        );
        let pending = service.submit_batch(vec![
            OptimizationRequest::new(module(64), SearchSpec::Greedy).with_seed(3),
            OptimizationRequest::new(module(96), SearchSpec::Greedy).with_seed(4),
            OptimizationRequest::new(module(128), SearchSpec::Greedy).with_seed(5),
        ]);
        service.resume();
        let responses = wait_all(&pending);
        assert_eq!(responses[0].status, ResponseStatus::Completed);
        for late in &responses[1..] {
            assert_eq!(late.status, ResponseStatus::Skipped);
            assert!(late.error.as_ref().unwrap().contains("budget exhausted"));
            assert_eq!(late.total_lookups(), 0);
        }
        assert!(service.budget().is_exhausted());
    }

    #[test]
    fn priorities_order_the_queue_without_changing_outcomes() {
        // A paused 1-worker service: the high-priority latecomer runs
        // first. Outcomes are seed-deterministic either way.
        let service = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let low = service.submit(
            OptimizationRequest::new(module(64), SearchSpec::Greedy)
                .with_seed(9)
                .with_priority(-1),
        );
        let high = service.submit(
            OptimizationRequest::new(module(96), SearchSpec::Greedy)
                .with_seed(9)
                .with_priority(5),
        );
        service.resume();
        let (low, high) = (low.wait(), high.wait());
        assert_eq!(low.status, ResponseStatus::Completed);
        assert_eq!(high.status, ResponseStatus::Completed);

        // Same requests, opposite submission order: identical fingerprints.
        let service2 = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let high2 = service2.submit(
            OptimizationRequest::new(module(96), SearchSpec::Greedy)
                .with_seed(9)
                .with_priority(5),
        );
        let low2 = service2.submit(
            OptimizationRequest::new(module(64), SearchSpec::Greedy)
                .with_seed(9)
                .with_priority(-1),
        );
        service2.resume();
        assert_eq!(low.fingerprint(), low2.wait().fingerprint());
        assert_eq!(high.fingerprint(), high2.wait().fingerprint());
    }

    #[test]
    fn env_override_shares_the_persistent_cache() {
        let service = OptimizationService::new(ServiceConfig::quick(), policy());
        // A shape-preserving override: a noise stream (searchers reseed it
        // deterministically from the request seed).
        let mut override_env = EnvConfig::small();
        override_env.noise_seed = Some(5);
        let first = service
            .submit(
                OptimizationRequest::new(module(64), SearchSpec::Greedy)
                    .with_seed(2)
                    .with_env(override_env.clone()),
            )
            .wait();
        assert_eq!(first.status, ResponseStatus::Completed);
        // The same override request again: the persistent table answers
        // (almost) everything.
        let again = service
            .submit(
                OptimizationRequest::new(module(64), SearchSpec::Greedy)
                    .with_seed(2)
                    .with_env(override_env),
            )
            .wait();
        assert!(again.cache_hits > 0, "second run must hit the shared table");
        assert_eq!(first.fingerprint(), again.fingerprint());
    }

    #[test]
    fn shape_changing_override_is_rejected_not_fatal() {
        // A schedule-length change resizes the feature vector the policy
        // was built for: admission must reject it (previously this
        // panicked a worker and hung the client).
        let service = OptimizationService::new(ServiceConfig::quick(), policy());
        let mut reshaped = EnvConfig::small();
        reshaped.max_schedule_len = 3;
        let response = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy).with_env(reshaped))
            .wait();
        assert_eq!(response.status, ResponseStatus::Rejected);
        assert!(response.error.as_ref().unwrap().contains("shape"));
        // The worker is alive and keeps serving.
        let ok = service
            .submit(OptimizationRequest::new(module(64), SearchSpec::Greedy))
            .wait();
        assert_eq!(ok.status, ResponseStatus::Completed);
    }

    #[test]
    fn drop_drains_the_queue() {
        let mut service = OptimizationService::new(ServiceConfig::quick().paused(), policy());
        let pending = service.submit_batch(vec![
            OptimizationRequest::new(module(64), SearchSpec::Greedy),
            OptimizationRequest::new(module(96), SearchSpec::beam(2)),
        ]);
        // Shut down while paused: every queued request is still answered.
        service.shutdown();
        for p in &pending {
            assert!(p.try_response().is_some(), "shutdown must drain the queue");
        }
    }
}
