//! High-level optimizer facade: train an MLIR RL agent and use it to
//! optimize modules, mirroring how the released artifact wraps the trained
//! policy behind `scripts/evaluate.sh`.
//!
//! Deployment goes through the request/response serving layer
//! ([`crate::service`]): the facade lazily builds an internal
//! [`OptimizationService`] (one worker, sharing the facade's evaluation
//! cache and current policy snapshot), submits
//! [`OptimizationRequest`]s to it, and unwraps the responses. The original
//! per-method entry points — [`MlirRlOptimizer::optimize`],
//! [`MlirRlOptimizer::search`], [`MlirRlOptimizer::optimize_all`],
//! [`MlirRlOptimizer::optimize_batch`], [`MlirRlOptimizer::portfolio`],
//! [`MlirRlOptimizer::optimize_portfolio_batch`] — are **kept as thin
//! deprecated wrappers** for compatibility; new code should submit
//! requests with a [`mlir_rl_search::SearchSpec`] instead:
//!
//! | deprecated facade method          | service equivalent                                   |
//! |-----------------------------------|------------------------------------------------------|
//! | `optimize(m)`                     | `submit(Request::new(m, SearchSpec::Greedy))`        |
//! | `optimize_all(ms)`                | `submit_batch` of greedy requests                    |
//! | `search(m, &searcher)`            | `SearchSpec` request, or `run_searcher` for custom objects |
//! | `optimize_batch(ms, &s, w)`       | `submit_batch`, or `run_searcher_batch` for custom objects |
//! | `portfolio(m, &p)`                | `submit` with `SearchSpec::Portfolio { .. }`         |
//! | `optimize_portfolio_batch(..)`    | `submit_batch` with `SearchSpec::Portfolio { .. }`   |

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use mlir_rl_agent::PolicyNetwork;
use mlir_rl_agent::{IterationStats, PolicyHyperparams, PpoConfig, PpoTrainer};
use mlir_rl_costmodel::{CostModel, MachineModel};
use mlir_rl_env::{EnvConfig, EpisodeStats, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_search::{BatchSearchReport, Portfolio, SearchOutcome, SearchSpec, Searcher};

use crate::service::{
    wait_all, OptimizationRequest, OptimizationService, PendingResponse, ServiceConfig,
};

/// The outcome of optimizing one module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizationOutcome {
    /// Baseline (untransformed) execution-time estimate, seconds.
    pub baseline_s: f64,
    /// Optimized execution-time estimate, seconds.
    pub optimized_s: f64,
    /// Speedup over the baseline.
    pub speedup: f64,
    /// Environment steps used.
    pub steps: usize,
}

impl From<EpisodeStats> for OptimizationOutcome {
    fn from(stats: EpisodeStats) -> Self {
        Self {
            baseline_s: stats.baseline_s,
            optimized_s: stats.final_s,
            speedup: stats.speedup,
            steps: stats.steps,
        }
    }
}

impl From<&SearchOutcome> for OptimizationOutcome {
    fn from(outcome: &SearchOutcome) -> Self {
        Self {
            baseline_s: outcome.baseline_s,
            optimized_s: outcome.best_s,
            speedup: outcome.speedup,
            steps: outcome.nodes_expanded,
        }
    }
}

/// Configuration of the [`MlirRlOptimizer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Environment configuration (action space, feature sizes, reward mode).
    pub env: EnvConfig,
    /// Machine the cost model targets.
    pub machine: MachineModel,
    /// Policy/value network sizes.
    pub hyper: PolicyHyperparams,
    /// PPO hyper-parameters.
    pub ppo: PpoConfig,
    /// Random seed.
    pub seed: u64,
}

impl OptimizerConfig {
    /// The paper-faithful configuration (large networks, 64-trajectory
    /// iterations). Training at this size takes a long time on one machine.
    pub fn paper() -> Self {
        Self {
            env: EnvConfig::paper(),
            machine: MachineModel::xeon_e5_2680_v4(),
            hyper: PolicyHyperparams::paper(),
            ppo: PpoConfig::paper(),
            seed: 0,
        }
    }

    /// A laptop-scale configuration used by the examples and the benchmark
    /// harness: small feature space, small networks, few trajectories.
    pub fn quick() -> Self {
        Self {
            env: EnvConfig::small(),
            machine: MachineModel::xeon_e5_2680_v4(),
            hyper: PolicyHyperparams {
                hidden_size: 32,
                backbone_layers: 2,
            },
            ppo: PpoConfig {
                trajectories_per_iteration: 12,
                minibatch_size: 16,
                update_epochs: 2,
                ..PpoConfig::paper()
            },
            seed: 0,
        }
    }
}

/// The end-to-end optimizer: an environment plus a PPO-trained agent.
///
/// Deployment entry points route through an internal
/// [`OptimizationService`] that shares the optimizer's evaluation cache, so
/// warmth persists across `optimize`/`search`/batch calls and across
/// directly submitted requests alike. Training invalidates the service's
/// policy snapshot; the next deployment call rebuilds it (the cache
/// survives).
#[derive(Debug)]
pub struct MlirRlOptimizer {
    config: OptimizerConfig,
    env: OptimizationEnv,
    trainer: PpoTrainer<PolicyNetwork>,
    rng: ChaCha8Rng,
    service: Option<OptimizationService>,
}

impl MlirRlOptimizer {
    /// Creates an untrained optimizer.
    pub fn new(config: OptimizerConfig) -> Self {
        let env = OptimizationEnv::new(config.env.clone(), CostModel::new(config.machine.clone()));
        let trainer = PpoTrainer::new(&config.env, config.hyper, config.ppo, config.seed);
        let rng = ChaCha8Rng::seed_from_u64(config.seed.wrapping_add(97));
        Self {
            config,
            env,
            trainer,
            rng,
            service: None,
        }
    }

    /// The optimizer configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// The current policy network (e.g. to drive a
    /// [`mlir_rl_search::SearchDriver`] directly with custom environment
    /// templates).
    pub fn policy(&self) -> &PolicyNetwork {
        &self.trainer.policy
    }

    /// Per-iteration training history.
    pub fn training_history(&self) -> &[IterationStats] {
        self.trainer.history()
    }

    /// Trains the agent for the given number of PPO iterations on a dataset
    /// of modules. Invalidates the internal service's policy snapshot (the
    /// evaluation cache survives — it is keyed by module/schedule
    /// fingerprints, not by the policy).
    pub fn train(&mut self, dataset: &[Module], iterations: usize) -> Vec<IterationStats> {
        self.service = None;
        self.trainer.train(&mut self.env, dataset, iterations)
    }

    /// The internal single-worker [`OptimizationService`] the deployment
    /// wrappers submit to, built on first use from the current policy and
    /// the optimizer's (shared) evaluation cache.
    pub fn service(&mut self) -> &OptimizationService {
        if self.service.is_none() {
            // Shared mode first, so the service's workers join the
            // optimizer's own table and warmth flows both ways.
            self.env.enable_shared_cache();
            self.service = Some(OptimizationService::from_env_template(
                &self.env,
                self.trainer.policy.clone(),
                1,
            ));
        }
        self.service.as_ref().expect("just built")
    }

    /// Builds a standalone [`OptimizationService`] with `workers` worker
    /// threads, serving the current policy snapshot on the optimizer's
    /// shared evaluation cache — the deployment hand-off: train here, then
    /// serve requests from the returned service while the optimizer keeps
    /// training or goes away entirely.
    pub fn spawn_service(&mut self, workers: usize) -> OptimizationService {
        self.env.enable_shared_cache();
        OptimizationService::from_env_template(&self.env, self.trainer.policy.clone(), workers)
    }

    /// Like [`MlirRlOptimizer::spawn_service`], but with the serving knobs
    /// (worker count, queue bound, per-client quota and weights, eval
    /// budget, paused start) taken from `config`. The config's
    /// `env`/`machine` fields are ignored: the optimizer's own environment
    /// provides them, so the returned service shares this optimizer's warm
    /// evaluation cache.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ServiceConfig::try_validate`] (zero
    /// queue capacity, quota or client weight).
    pub fn spawn_service_with(&mut self, config: &ServiceConfig) -> OptimizationService {
        config.try_validate().expect("invalid service config");
        self.env.enable_shared_cache();
        OptimizationService::from_env_template_with(&self.env, self.trainer.policy.clone(), config)
    }

    /// Submits one [`OptimizationRequest`] to the internal service.
    pub fn submit(&mut self, request: OptimizationRequest) -> PendingResponse {
        self.service().submit(request)
    }

    /// Submits a batch of requests to the internal service.
    pub fn submit_batch(&mut self, requests: Vec<OptimizationRequest>) -> Vec<PendingResponse> {
        self.service().submit_batch(requests)
    }

    /// Draws the next deployment seed (each wrapper call consumes exactly
    /// one, preserving the pre-service seed sequence).
    fn next_seed(&mut self) -> u64 {
        use rand::Rng;
        self.rng.gen()
    }

    /// Optimizes one module by greedy policy decoding (the paper's
    /// deployment behavior).
    ///
    /// **Deprecated in favor of the service API**: submit
    /// `OptimizationRequest::new(module, SearchSpec::Greedy)` via
    /// [`MlirRlOptimizer::submit`] (this wrapper does exactly that).
    pub fn optimize(&mut self, module: &Module) -> OptimizationOutcome {
        let seed = self.next_seed();
        let response = self
            .submit(OptimizationRequest::new(module.clone(), SearchSpec::Greedy).with_seed(seed))
            .wait();
        (&response
            .outcome
            .expect("a valid greedy request always completes"))
            .into()
    }

    /// Searches the schedule space of one module with any [`Searcher`]
    /// object (beam, MCTS, random, a baseline adapter, ...) guided by the
    /// current policy. The service's evaluation cache stays warm across
    /// calls.
    ///
    /// **Deprecated in favor of the service API**: submit a
    /// [`SearchSpec`] request, or use
    /// [`OptimizationService::run_searcher`] for custom searcher objects
    /// that have no spec (this wrapper routes there).
    pub fn search(
        &mut self,
        module: &Module,
        searcher: &dyn Searcher<PolicyNetwork>,
    ) -> SearchOutcome {
        let seed = self.next_seed();
        self.service().run_searcher(searcher, module, seed)
    }

    /// Optimizes a batch of modules, returning `(module name, outcome)`
    /// pairs.
    ///
    /// **Deprecated in favor of the service API**: this is
    /// [`MlirRlOptimizer::submit_batch`] of greedy requests (one seed per
    /// module, in order) plus a blocking [`wait_all`].
    pub fn optimize_all(&mut self, modules: &[Module]) -> Vec<(String, OptimizationOutcome)> {
        let requests: Vec<OptimizationRequest> = modules
            .iter()
            .map(|m| {
                let seed = self.next_seed();
                OptimizationRequest::new(m.clone(), SearchSpec::Greedy).with_seed(seed)
            })
            .collect();
        let pending = self.submit_batch(requests);
        wait_all(&pending)
            .into_iter()
            .map(|response| {
                let outcome = response
                    .outcome
                    .expect("a valid greedy request always completes");
                (response.module, (&outcome).into())
            })
            .collect()
    }

    /// Optimizes a batch of modules with a [`Searcher`] object, fanned out
    /// over `workers` threads; all searches share the service's persistent
    /// evaluation cache. Outcomes are identical for any worker count.
    ///
    /// **Deprecated in favor of the service API**: submit a batch of
    /// [`SearchSpec`] requests, or use
    /// [`OptimizationService::run_searcher_batch`] for custom searcher
    /// objects (this wrapper routes there).
    pub fn optimize_batch(
        &mut self,
        modules: &[Module],
        searcher: &dyn Searcher<PolicyNetwork>,
        workers: usize,
    ) -> BatchSearchReport {
        let base_seed = self.next_seed();
        self.service()
            .run_searcher_batch(searcher, modules, base_seed, workers)
    }

    /// Optimizes one module with a [`Portfolio`] of searchers, returning
    /// the best schedule any member found with per-member attribution in
    /// [`SearchOutcome::members`].
    ///
    /// **Deprecated in favor of the service API**: submit an
    /// `OptimizationRequest` with `SearchSpec::Portfolio { .. }`.
    pub fn portfolio(
        &mut self,
        module: &Module,
        portfolio: &Portfolio<PolicyNetwork>,
    ) -> SearchOutcome {
        self.search(module, portfolio)
    }

    /// Optimizes a batch of modules with a [`Portfolio`] fanned out over
    /// `workers` threads; every module and every roster member shares the
    /// service's persistent evaluation cache. Outcomes are identical for
    /// any worker count.
    ///
    /// **Deprecated in favor of the service API**: submit a batch of
    /// `SearchSpec::Portfolio { .. }` requests.
    pub fn optimize_portfolio_batch(
        &mut self,
        modules: &[Module],
        portfolio: &Portfolio<PolicyNetwork>,
        workers: usize,
    ) -> BatchSearchReport {
        let base_seed = self.next_seed();
        self.service()
            .run_searcher_batch(portfolio, modules, base_seed, workers)
    }

    /// Average policy-inference plus transformation-application time per
    /// code sample over the given modules, in seconds (the Sec. VII-B
    /// overhead measurement).
    pub fn compilation_overhead_s(&mut self, modules: &[Module]) -> f64 {
        if modules.is_empty() {
            return 0.0;
        }
        let start = std::time::Instant::now();
        for module in modules {
            let _ = self.optimize(module);
        }
        start.elapsed().as_secs_f64() / modules.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_ir::ModuleBuilder;
    use mlir_rl_search::GreedyPolicy;

    fn tiny_dataset() -> Vec<Module> {
        (0..3)
            .map(|i| {
                let size = 64 * (i + 1) as u64;
                let mut b = ModuleBuilder::new(format!("mm{size}"));
                let a = b.argument("A", vec![size, size]);
                let w = b.argument("B", vec![size, size]);
                let mm = b.matmul(a, w);
                b.relu(mm);
                b.finish()
            })
            .collect()
    }

    fn tiny_config() -> OptimizerConfig {
        OptimizerConfig {
            hyper: PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            },
            ppo: PpoConfig {
                trajectories_per_iteration: 2,
                minibatch_size: 4,
                update_epochs: 1,
                ..PpoConfig::paper()
            },
            ..OptimizerConfig::quick()
        }
    }

    #[test]
    fn untrained_optimizer_produces_valid_outcomes() {
        let mut opt = MlirRlOptimizer::new(tiny_config());
        let modules = tiny_dataset();
        let outcome = opt.optimize(&modules[0]);
        assert!(outcome.baseline_s > 0.0);
        assert!(outcome.speedup > 0.0);
        assert!(outcome.steps > 0);
    }

    #[test]
    fn training_then_batch_evaluation() {
        let mut opt = MlirRlOptimizer::new(tiny_config());
        let modules = tiny_dataset();
        let history = opt.train(&modules, 2);
        assert_eq!(history.len(), 2);
        assert_eq!(opt.training_history().len(), 2);
        let results = opt.optimize_all(&modules);
        assert_eq!(results.len(), 3);
        for (name, outcome) in &results {
            assert!(!name.is_empty());
            assert!(outcome.speedup.is_finite());
        }
    }

    #[test]
    fn search_and_batch_driver_work_through_the_facade() {
        let mut opt = MlirRlOptimizer::new(tiny_config());
        let modules = tiny_dataset();
        let greedy = opt.optimize(&modules[0]);
        let beam = opt.search(&modules[0], &mlir_rl_search::BeamSearch::new(4));
        assert!(
            beam.speedup >= greedy.speedup,
            "beam search is seeded with the greedy trajectory"
        );
        let report = opt.optimize_batch(&modules, &mlir_rl_search::BeamSearch::new(2), 2);
        assert_eq!(report.outcomes.len(), modules.len());
        assert!(report.geomean_speedup() > 0.0);
        assert!(report.shared_cache_hits + report.shared_cache_misses > 0);
    }

    #[test]
    fn portfolio_entry_points_work_through_the_facade() {
        use mlir_rl_search::{BeamSearch, Mcts};
        let mut opt = MlirRlOptimizer::new(tiny_config());
        let modules = tiny_dataset();
        let roster = || {
            Portfolio::round_robin()
                .with_member(GreedyPolicy)
                .with_member(BeamSearch::new(2))
                .with_member(Mcts::new(4).with_branch(2))
        };
        let outcome = opt.portfolio(&modules[0], &roster());
        assert_eq!(outcome.members.len(), 3);
        let greedy = opt.optimize(&modules[0]);
        assert!(
            outcome.speedup >= greedy.speedup,
            "a greedy-seeded portfolio is never worse than greedy"
        );
        let report = opt.optimize_portfolio_batch(&modules, &roster(), 2);
        assert_eq!(report.outcomes.len(), modules.len());
        let attribution = report.member_attribution();
        assert_eq!(attribution.len(), 3);
        assert_eq!(
            attribution.iter().map(|m| m.wins).sum::<usize>(),
            modules.len()
        );
    }

    #[test]
    fn compilation_overhead_is_measured() {
        let mut opt = MlirRlOptimizer::new(tiny_config());
        let modules = tiny_dataset();
        let overhead = opt.compilation_overhead_s(&modules[..1]);
        assert!(overhead > 0.0 && overhead < 10.0);
        assert_eq!(opt.compilation_overhead_s(&[]), 0.0);
    }

    #[test]
    fn config_presets() {
        let paper = OptimizerConfig::paper();
        assert_eq!(paper.env.max_loops, 12);
        assert_eq!(paper.hyper.hidden_size, 512);
        let quick = OptimizerConfig::quick();
        assert!(quick.hyper.hidden_size < paper.hyper.hidden_size);
    }
}
