//! # mlir-rl-core
//!
//! High-level facade over the MLIR RL reproduction: the end-to-end
//! [`MlirRlOptimizer`] (environment + PPO agent + cost model), the
//! request/response serving layer ([`service`] — a long-lived
//! [`OptimizationService`] in front of the trained policy, with one
//! persistent shared evaluation cache, a worker pool, budget admission and
//! cancellation), and the report structures the experiment harness uses to
//! regenerate the paper's tables and figures. Re-exports the main types of
//! every underlying crate so that downstream users can depend on
//! `mlir-rl-core` alone.
//!
//! ## Example
//!
//! ```
//! use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
//! use mlir_rl_core::ir::ModuleBuilder;
//!
//! let mut b = ModuleBuilder::new("m");
//! let a = b.argument("A", vec![128, 128]);
//! let w = b.argument("B", vec![128, 128]);
//! b.matmul(a, w);
//!
//! let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
//! let outcome = optimizer.optimize(&b.finish());
//! assert!(outcome.speedup > 0.0);
//! ```

#![warn(missing_docs)]

pub mod optimizer;
pub mod report;
pub mod service;

pub use optimizer::{MlirRlOptimizer, OptimizationOutcome, OptimizerConfig};
pub use report::{Figure, Series, SpeedupTable};
pub use service::{
    wait_all, OptimizationRequest, OptimizationResponse, OptimizationService, PendingResponse,
    ResponseStatus, ServiceConfig, ServiceMetrics, ServiceStats, BACKPRESSURE_PREFIX,
};

/// Re-export of the agent crate.
pub use mlir_rl_agent as agent;
/// Re-export of the baselines crate.
pub use mlir_rl_baselines as baselines;
/// Re-export of the cost-model crate.
pub use mlir_rl_costmodel as costmodel;
/// Re-export of the environment crate.
pub use mlir_rl_env as env;
/// Re-export of the IR crate.
pub use mlir_rl_ir as ir;
/// Re-export of the neural-network crate.
pub use mlir_rl_nn as nn;
/// Re-export of the schedule-search crate.
pub use mlir_rl_search as search;
/// Re-export of the transformations crate.
pub use mlir_rl_transforms as transforms;
/// Re-export of the workloads crate.
pub use mlir_rl_workloads as workloads;
