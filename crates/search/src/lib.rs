//! # mlir-rl-search
//!
//! Schedule search over the RL environment — the deployment-time layer the
//! paper leaves at greedy decoding. A trained policy is a *prior* over good
//! schedules; searching the schedule space around that prior (the pattern
//! of Pearl-style policy-guided inference search) finds strictly better
//! schedules at a controllable evaluation budget. Everything here runs over
//! [`mlir_rl_env::OptimizationEnv`]'s snapshot/restore branching and scores
//! branches through the schedule-keyed cost-model cache, so revisited
//! schedules never re-run the estimator and all branches of a search (and
//! all modules of a batch) share one sharded thread-shared table.
//!
//! The pieces:
//!
//! * [`Searcher`] — the common interface: one module in, one
//!   [`SearchOutcome`] out (best schedule, speedup, nodes expanded, cache
//!   accounting).
//! * [`GreedyPolicy`] — greedy policy decoding, the paper's deployment
//!   behavior and the baseline every searcher is measured against.
//! * [`BeamSearch`] — policy-ranked top-`width` expansion with beam states
//!   scored by the cost model; seeded with the greedy trajectory, so its
//!   result is never worse than greedy decoding.
//! * [`Mcts`] — UCT with policy priors (PUCT) and cost-model playouts,
//!   deterministic under a fixed seed; optional Dirichlet root noise and
//!   min-max value normalization behind [`MctsConfig`] (off by default,
//!   bitwise-preserving).
//! * [`RandomSearch`] — a budgeted uniform-random baseline over the masked
//!   action space.
//! * [`BaselineSearcher`] — adapts the comparison systems of
//!   `mlir-rl-baselines` (vendor library, Mullapudi, Halide RL) to the same
//!   [`Searcher`] interface so batch comparisons are uniform.
//! * [`SearchDriver`] — the batch entry point: fans a set of modules out
//!   over worker threads, all sharing one evaluation cache. Outcomes are
//!   bit-for-bit identical for any worker count (per-module seeds; cached
//!   values are deterministic), so the worker count is purely a throughput
//!   knob.
//!
//! ## Example
//!
//! ```
//! use mlir_rl_agent::{PolicyHyperparams, PpoConfig, PpoTrainer};
//! use mlir_rl_costmodel::{CostModel, MachineModel};
//! use mlir_rl_env::{EnvConfig, OptimizationEnv};
//! use mlir_rl_ir::ModuleBuilder;
//! use mlir_rl_search::{BeamSearch, SearchDriver, Searcher};
//!
//! let config = EnvConfig::small();
//! let mut env = OptimizationEnv::new(config.clone(), CostModel::new(MachineModel::default()));
//! let mut trainer = PpoTrainer::new(
//!     &config,
//!     PolicyHyperparams { hidden_size: 16, backbone_layers: 1 },
//!     PpoConfig::small(),
//!     0,
//! );
//!
//! let mut b = ModuleBuilder::new("m");
//! let a = b.argument("A", vec![128, 128]);
//! let w = b.argument("B", vec![128, 128]);
//! b.matmul(a, w);
//! let module = b.finish();
//!
//! // One module, directly through a searcher...
//! let outcome = BeamSearch::new(4).search(&mut env, &mut trainer.policy, &module, 7);
//! assert!(outcome.speedup > 0.0);
//!
//! // ...or a batch through the parallel driver (shared eval cache).
//! let report = SearchDriver::new(2).run(&env, &trainer.policy, &BeamSearch::new(4), &[module]);
//! assert_eq!(report.outcomes.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod beam;
pub mod driver;
pub mod greedy;
pub mod mcts;
pub mod random;
pub mod searcher;

pub use baseline::BaselineSearcher;
pub use beam::BeamSearch;
pub use driver::{BatchSearchReport, SearchDriver};
pub use greedy::GreedyPolicy;
pub use mcts::{Mcts, MctsConfig};
pub use random::{random_action, RandomSearch};
pub use searcher::{SearchOutcome, Searcher};

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_agent::{PolicyHyperparams, PolicyNetwork};
    use mlir_rl_baselines::{MullapudiAutoscheduler, VendorLibrary, VendorMode};
    use mlir_rl_costmodel::{CostModel, MachineModel};
    use mlir_rl_env::{EnvConfig, OptimizationEnv};
    use mlir_rl_ir::{Module, ModuleBuilder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn env() -> OptimizationEnv {
        OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()))
    }

    fn policy(seed: u64) -> PolicyNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        PolicyNetwork::new(
            EnvConfig::small(),
            PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            },
            &mut rng,
        )
    }

    fn chain(m: u64, n: u64, k: u64) -> Module {
        let mut b = ModuleBuilder::new(format!("chain_{m}x{n}x{k}"));
        let a = b.argument("A", vec![m, k]);
        let w = b.argument("B", vec![k, n]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    }

    fn modules() -> Vec<Module> {
        vec![chain(64, 64, 64), chain(128, 64, 32), chain(96, 48, 64)]
    }

    /// Everything that must be identical between two runs of the same
    /// deterministic search (cache hit/miss counts legitimately differ with
    /// table warmth, so they are excluded).
    fn deterministic_fields(
        o: &SearchOutcome,
    ) -> (String, f64, f64, Vec<mlir_rl_env::Action>, usize) {
        (
            o.module.clone(),
            o.best_s,
            o.speedup,
            o.best_actions.clone(),
            o.nodes_expanded,
        )
    }

    #[test]
    fn greedy_outcome_accounting_is_consistent() {
        let mut e = env();
        let mut p = policy(0);
        let outcome = GreedyPolicy.search(&mut e, &mut p, &modules()[0], 3);
        assert!(outcome.baseline_s > 0.0);
        assert!(outcome.speedup.is_finite() && outcome.speedup > 0.0);
        assert!(outcome.nodes_expanded > 0);
        assert_eq!(
            outcome.total_lookups(),
            outcome.evaluations + outcome.cache_hits
        );
        assert!(!outcome.best_schedule.is_empty());
        // The env's own accounting agrees with the outcome's cache-delta
        // accounting: a fresh env observed exactly this search.
        assert_eq!(
            outcome.total_lookups(),
            (e.cache().hits() + e.cache().misses()) as usize
        );
    }

    #[test]
    fn beam_width_one_is_exactly_greedy() {
        for (seed, module) in modules().into_iter().enumerate() {
            let mut e1 = env();
            let mut p = policy(1);
            let greedy = GreedyPolicy.search(&mut e1, &mut p, &module, seed as u64);
            let mut e2 = env();
            let beam = BeamSearch::new(1).search(&mut e2, &mut p, &module, seed as u64);
            assert_eq!(
                greedy.best_actions, beam.best_actions,
                "width-1 beam must take the greedy action at every step"
            );
            assert_eq!(greedy.best_s, beam.best_s);
            assert_eq!(greedy.best_schedule, beam.best_schedule);
        }
    }

    #[test]
    fn beam_search_is_never_worse_than_greedy() {
        let mut p = policy(2);
        for (seed, module) in modules().into_iter().enumerate() {
            let mut e1 = env();
            let greedy = GreedyPolicy.search(&mut e1, &mut p, &module, seed as u64);
            let mut e2 = env();
            let beam = BeamSearch::new(4).search(&mut e2, &mut p, &module, seed as u64);
            assert!(
                beam.speedup >= greedy.speedup,
                "beam {} must be >= greedy {} on {}",
                beam.speedup,
                greedy.speedup,
                module.name()
            );
            assert!(beam.nodes_expanded > greedy.nodes_expanded);
        }
    }

    #[test]
    fn mcts_and_random_are_deterministic_under_a_fixed_seed() {
        let module = chain(64, 64, 64);
        let mcts = Mcts::new(8).with_branch(3);
        let random = RandomSearch::new(4);
        for _ in 0..2 {
            let (mut e1, mut e2) = (env(), env());
            let mut p = policy(3);
            let a = mcts.search(&mut e1, &mut p, &module, 11);
            let b = mcts.search(&mut e2, &mut p, &module, 11);
            assert_eq!(deterministic_fields(&a), deterministic_fields(&b));
            let (mut e1, mut e2) = (env(), env());
            let a = random.search(&mut e1, &mut p, &module, 11);
            let b = random.search(&mut e2, &mut p, &module, 11);
            assert_eq!(deterministic_fields(&a), deterministic_fields(&b));
        }
    }

    #[test]
    fn mcts_tuning_off_is_bitwise_unchanged() {
        // The tuning knobs' disabled defaults must not alter outcomes at
        // all: a default-configured searcher and one with every knob
        // explicitly zeroed/disabled produce bit-identical searches.
        let module = chain(96, 48, 64);
        let default_mcts = Mcts::new(10).with_branch(3);
        let explicit = Mcts {
            tuning: MctsConfig {
                dirichlet_epsilon: 0.0,
                dirichlet_alpha: 0.3,
                value_normalization: false,
            },
            ..Mcts::new(10).with_branch(3)
        };
        let mut p = policy(21);
        let (mut e1, mut e2) = (env(), env());
        let a = default_mcts.search(&mut e1, &mut p, &module, 17);
        let b = explicit.search(&mut e2, &mut p, &module, 17);
        assert_eq!(deterministic_fields(&a), deterministic_fields(&b));
    }

    #[test]
    fn mcts_root_noise_and_normalization_stay_seed_deterministic() {
        let module = chain(64, 64, 64);
        let tuned = Mcts::new(10)
            .with_branch(3)
            .with_root_noise(0.25, 0.3)
            .with_value_normalization();
        let mut p = policy(22);
        let (mut e1, mut e2) = (env(), env());
        let a = tuned.search(&mut e1, &mut p, &module, 23);
        let b = tuned.search(&mut e2, &mut p, &module, 23);
        assert_eq!(
            deterministic_fields(&a),
            deterministic_fields(&b),
            "tuned MCTS must stay deterministic under a fixed seed"
        );
        // The do-nothing schedule still bounds the outcome below.
        assert!(a.speedup >= 1.0 - 1e-12);
        // Noise draws are part of the seed stream: different seeds may
        // diverge, but both stay valid outcomes.
        let mut e3 = env();
        let c = tuned.search(&mut e3, &mut p, &module, 24);
        assert!(c.speedup.is_finite() && c.speedup > 0.0);
    }

    #[test]
    fn driver_is_worker_count_invariant_under_measurement_noise() {
        // Searchers reseed the noise stream from the search seed, so
        // outcomes do not depend on the stream position the previous
        // module's search left behind — i.e. not on worker count.
        let mut config = EnvConfig::small();
        config.noise_seed = Some(13);
        let template = OptimizationEnv::new(config, CostModel::new(MachineModel::default()));
        let p = policy(9);
        let batch = modules();
        for searcher in [
            Box::new(GreedyPolicy) as Box<dyn Searcher<PolicyNetwork>>,
            Box::new(BeamSearch::new(2)),
            Box::new(RandomSearch::new(2)),
        ] {
            let serial =
                SearchDriver::new(1)
                    .with_seed(4)
                    .run(&template, &p, searcher.as_ref(), &batch);
            let parallel =
                SearchDriver::new(3)
                    .with_seed(4)
                    .run(&template, &p, searcher.as_ref(), &batch);
            for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
                assert_eq!(
                    deterministic_fields(a),
                    deterministic_fields(b),
                    "{} must stay invariant with noise enabled",
                    a.searcher
                );
                assert_eq!(a.baseline_s, b.baseline_s, "baseline is noise-free");
            }
        }
    }

    #[test]
    fn random_search_floor_is_the_baseline() {
        let mut e = env();
        let mut p = policy(4);
        let outcome = RandomSearch::new(3).search(&mut e, &mut p, &modules()[0], 5);
        assert!(
            outcome.speedup >= 1.0 - 1e-12,
            "the do-nothing schedule bounds random search below"
        );
    }

    #[test]
    fn driver_outcomes_are_worker_count_invariant() {
        let batch: Vec<Module> = modules().into_iter().chain(modules()).collect();
        let template = env();
        let p = policy(5);
        for searcher in [
            Box::new(Mcts::new(6).with_branch(2)) as Box<dyn Searcher<PolicyNetwork>>,
            Box::new(RandomSearch::new(3)),
            Box::new(BeamSearch::new(2)),
        ] {
            let serial =
                SearchDriver::new(1)
                    .with_seed(9)
                    .run(&template, &p, searcher.as_ref(), &batch);
            let parallel =
                SearchDriver::new(3)
                    .with_seed(9)
                    .run(&template, &p, searcher.as_ref(), &batch);
            assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
            for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
                assert_eq!(
                    deterministic_fields(a),
                    deterministic_fields(b),
                    "{} must be thread-count invariant",
                    a.searcher
                );
            }
        }
    }

    #[test]
    fn driver_shares_one_cache_across_the_batch() {
        // The same module three times: after the first search, the others'
        // lookups are (almost) all hits on the shared table.
        let batch = vec![chain(64, 64, 64), chain(64, 64, 64), chain(64, 64, 64)];
        let template = env();
        let p = policy(6);
        let report = SearchDriver::new(2).run(&template, &p, &GreedyPolicy, &batch);
        assert_eq!(report.outcomes.len(), 3);
        assert!(
            report.shared_cache_hits > 0,
            "duplicate modules must hit the shared table"
        );
        assert!(report.shared_cache_hit_rate() > 0.0);
        assert!(report.geomean_speedup() > 0.0);
        assert_eq!(
            (report.shared_cache_hits + report.shared_cache_misses) as usize,
            report
                .outcomes
                .iter()
                .map(SearchOutcome::total_lookups)
                .sum::<usize>(),
            "driver-level and outcome-level lookup accounting agree"
        );
    }

    #[test]
    fn baseline_adapter_exposes_comparison_systems_as_searchers() {
        let mut e = env();
        let mut p = policy(7);
        let module = chain(128, 128, 128);
        for searcher in [
            Box::new(BaselineSearcher::new(VendorLibrary::new(
                VendorMode::Compiled,
            ))) as Box<dyn Searcher<PolicyNetwork>>,
            Box::new(BaselineSearcher::new(MullapudiAutoscheduler::new())),
        ] {
            let outcome = searcher.search(&mut e, &mut p, &module, 0);
            assert!(
                outcome.speedup > 1.0,
                "{} should beat MLIR",
                outcome.searcher
            );
            assert!(!outcome.best_schedule.is_empty());
        }
    }
}
