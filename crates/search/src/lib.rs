//! # mlir-rl-search
//!
//! Schedule search over the RL environment — the deployment-time layer the
//! paper leaves at greedy decoding. A trained policy is a *prior* over good
//! schedules; searching the schedule space around that prior (the pattern
//! of Pearl-style policy-guided inference search) finds strictly better
//! schedules at a controllable evaluation budget. Everything here runs over
//! [`mlir_rl_env::OptimizationEnv`]'s snapshot/restore branching and scores
//! branches through the schedule-keyed cost-model cache, so revisited
//! schedules never re-run the estimator and all branches of a search (and
//! all modules of a batch) share one sharded thread-shared table.
//!
//! The pieces:
//!
//! * [`Searcher`] — the common interface: one module in, one
//!   [`SearchOutcome`] out (best schedule, speedup, nodes expanded, cache
//!   accounting).
//! * [`GreedyPolicy`] — greedy policy decoding, the paper's deployment
//!   behavior and the baseline every searcher is measured against.
//! * [`BeamSearch`] — policy-ranked top-`width` expansion with beam states
//!   scored by the cost model; seeded with the greedy trajectory, so its
//!   result is never worse than greedy decoding.
//! * [`Mcts`] — UCT with policy priors (PUCT) and cost-model playouts,
//!   deterministic under a fixed seed; optional Dirichlet root noise,
//!   min-max value normalization and progressive widening behind
//!   [`MctsConfig`] (all off by default, bitwise-preserving).
//! * [`RandomSearch`] — a budgeted uniform-random baseline over the masked
//!   action space.
//! * [`Portfolio`] — a roster of member searchers on one shared evaluation
//!   cache, round-robin or racing (first past a target speedup wins), with
//!   per-member attribution and a common eval-budget ledger. Racing stays
//!   deterministic by rank-ordered preemption.
//! * [`BaselineSearcher`] — adapts the comparison systems of
//!   `mlir-rl-baselines` (vendor library, Mullapudi, Halide RL) to the same
//!   [`Searcher`] interface so batch comparisons are uniform.
//! * [`SearchDriver`] — the batch entry point: fans a set of modules out
//!   over worker threads, all sharing one evaluation cache. Outcomes are
//!   bit-for-bit identical for any worker count (per-module seeds; cached
//!   values are deterministic), so the worker count is purely a throughput
//!   knob. Its general form, [`SearchDriver::run_jobs`], runs a
//!   heterogeneous [`SearchJob`] list — the engine the serving layer's
//!   request batches sit on.
//! * [`SearchSpec`] — the declarative, owned description of a searcher
//!   (greedy / beam / MCTS / random / a portfolio roster) that serving
//!   requests carry and workers [`SearchSpec::build`] on their own threads.
//!
//! ## Example
//!
//! ```
//! use mlir_rl_agent::{PolicyHyperparams, PpoConfig, PpoTrainer};
//! use mlir_rl_costmodel::{CostModel, MachineModel};
//! use mlir_rl_env::{EnvConfig, OptimizationEnv};
//! use mlir_rl_ir::ModuleBuilder;
//! use mlir_rl_search::{BeamSearch, SearchDriver, Searcher};
//!
//! let config = EnvConfig::small();
//! let mut env = OptimizationEnv::new(config.clone(), CostModel::new(MachineModel::default()));
//! let mut trainer = PpoTrainer::new(
//!     &config,
//!     PolicyHyperparams { hidden_size: 16, backbone_layers: 1 },
//!     PpoConfig::small(),
//!     0,
//! );
//!
//! let mut b = ModuleBuilder::new("m");
//! let a = b.argument("A", vec![128, 128]);
//! let w = b.argument("B", vec![128, 128]);
//! b.matmul(a, w);
//! let module = b.finish();
//!
//! // One module, directly through a searcher...
//! let outcome = BeamSearch::new(4).search(&mut env, &mut trainer.policy, &module, 7);
//! assert!(outcome.speedup > 0.0);
//!
//! // ...or a batch through the parallel driver (shared eval cache).
//! let report = SearchDriver::new(2).run(&env, &trainer.policy, &BeamSearch::new(4), &[module]);
//! assert_eq!(report.outcomes.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod beam;
pub mod driver;
pub mod greedy;
pub mod mcts;
pub mod portfolio;
pub mod random;
pub mod searcher;
pub mod spec;

pub use baseline::BaselineSearcher;
pub use beam::BeamSearch;
pub use driver::{BatchSearchReport, MemberAggregate, SearchDriver, SearchJob};
pub use greedy::GreedyPolicy;
pub use mcts::{Mcts, MctsConfig};
pub use portfolio::{Portfolio, PortfolioMode};
pub use random::{random_action, RandomSearch};
pub use searcher::{MemberOutcome, MemberStatus, SearchOutcome, Searcher, StopToken};
pub use spec::SearchSpec;

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_agent::{PolicyHyperparams, PolicyNetwork};
    use mlir_rl_baselines::{MullapudiAutoscheduler, VendorLibrary, VendorMode};
    use mlir_rl_costmodel::{CostModel, MachineModel};
    use mlir_rl_env::{EnvConfig, OptimizationEnv};
    use mlir_rl_ir::{Module, ModuleBuilder};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn env() -> OptimizationEnv {
        OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()))
    }

    fn policy(seed: u64) -> PolicyNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        PolicyNetwork::new(
            EnvConfig::small(),
            PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            },
            &mut rng,
        )
    }

    fn chain(m: u64, n: u64, k: u64) -> Module {
        let mut b = ModuleBuilder::new(format!("chain_{m}x{n}x{k}"));
        let a = b.argument("A", vec![m, k]);
        let w = b.argument("B", vec![k, n]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        b.finish()
    }

    fn modules() -> Vec<Module> {
        vec![chain(64, 64, 64), chain(128, 64, 32), chain(96, 48, 64)]
    }

    /// Everything that must be identical between two runs of the same
    /// deterministic search (cache hit/miss counts legitimately differ with
    /// table warmth, so they are excluded).
    fn deterministic_fields(
        o: &SearchOutcome,
    ) -> (String, f64, f64, Vec<mlir_rl_env::Action>, usize) {
        (
            o.module.clone(),
            o.best_s,
            o.speedup,
            o.best_actions.clone(),
            o.nodes_expanded,
        )
    }

    #[test]
    fn greedy_outcome_accounting_is_consistent() {
        let mut e = env();
        let mut p = policy(0);
        let outcome = GreedyPolicy.search(&mut e, &mut p, &modules()[0], 3);
        assert!(outcome.baseline_s > 0.0);
        assert!(outcome.speedup.is_finite() && outcome.speedup > 0.0);
        assert!(outcome.nodes_expanded > 0);
        assert_eq!(
            outcome.total_lookups(),
            outcome.evaluations + outcome.cache_hits
        );
        assert!(!outcome.best_schedule.is_empty());
        // The env's own accounting agrees with the outcome's cache-delta
        // accounting: a fresh env observed exactly this search.
        assert_eq!(
            outcome.total_lookups(),
            (e.cache().hits() + e.cache().misses()) as usize
        );
    }

    #[test]
    fn beam_width_one_is_exactly_greedy() {
        for (seed, module) in modules().into_iter().enumerate() {
            let mut e1 = env();
            let mut p = policy(1);
            let greedy = GreedyPolicy.search(&mut e1, &mut p, &module, seed as u64);
            let mut e2 = env();
            let beam = BeamSearch::new(1).search(&mut e2, &mut p, &module, seed as u64);
            assert_eq!(
                greedy.best_actions, beam.best_actions,
                "width-1 beam must take the greedy action at every step"
            );
            assert_eq!(greedy.best_s, beam.best_s);
            assert_eq!(greedy.best_schedule, beam.best_schedule);
        }
    }

    #[test]
    fn beam_search_is_never_worse_than_greedy() {
        let mut p = policy(2);
        for (seed, module) in modules().into_iter().enumerate() {
            let mut e1 = env();
            let greedy = GreedyPolicy.search(&mut e1, &mut p, &module, seed as u64);
            let mut e2 = env();
            let beam = BeamSearch::new(4).search(&mut e2, &mut p, &module, seed as u64);
            assert!(
                beam.speedup >= greedy.speedup,
                "beam {} must be >= greedy {} on {}",
                beam.speedup,
                greedy.speedup,
                module.name()
            );
            assert!(beam.nodes_expanded > greedy.nodes_expanded);
        }
    }

    #[test]
    fn mcts_and_random_are_deterministic_under_a_fixed_seed() {
        let module = chain(64, 64, 64);
        let mcts = Mcts::new(8).with_branch(3);
        let random = RandomSearch::new(4);
        for _ in 0..2 {
            let (mut e1, mut e2) = (env(), env());
            let mut p = policy(3);
            let a = mcts.search(&mut e1, &mut p, &module, 11);
            let b = mcts.search(&mut e2, &mut p, &module, 11);
            assert_eq!(deterministic_fields(&a), deterministic_fields(&b));
            let (mut e1, mut e2) = (env(), env());
            let a = random.search(&mut e1, &mut p, &module, 11);
            let b = random.search(&mut e2, &mut p, &module, 11);
            assert_eq!(deterministic_fields(&a), deterministic_fields(&b));
        }
    }

    #[test]
    fn mcts_tuning_off_is_bitwise_unchanged() {
        // The tuning knobs' disabled defaults must not alter outcomes at
        // all: a default-configured searcher and one with every knob
        // explicitly zeroed/disabled produce bit-identical searches.
        let module = chain(96, 48, 64);
        let default_mcts = Mcts::new(10).with_branch(3);
        let explicit = Mcts {
            tuning: MctsConfig {
                dirichlet_epsilon: 0.0,
                dirichlet_alpha: 0.3,
                value_normalization: false,
                widening_c: 0.0,
                widening_alpha: 0.5,
            },
            ..Mcts::new(10).with_branch(3)
        };
        let mut p = policy(21);
        let (mut e1, mut e2) = (env(), env());
        let a = default_mcts.search(&mut e1, &mut p, &module, 17);
        let b = explicit.search(&mut e2, &mut p, &module, 17);
        assert_eq!(deterministic_fields(&a), deterministic_fields(&b));
    }

    #[test]
    fn mcts_root_noise_and_normalization_stay_seed_deterministic() {
        let module = chain(64, 64, 64);
        let tuned = Mcts::new(10)
            .with_branch(3)
            .with_root_noise(0.25, 0.3)
            .with_value_normalization();
        let mut p = policy(22);
        let (mut e1, mut e2) = (env(), env());
        let a = tuned.search(&mut e1, &mut p, &module, 23);
        let b = tuned.search(&mut e2, &mut p, &module, 23);
        assert_eq!(
            deterministic_fields(&a),
            deterministic_fields(&b),
            "tuned MCTS must stay deterministic under a fixed seed"
        );
        // The do-nothing schedule still bounds the outcome below.
        assert!(a.speedup >= 1.0 - 1e-12);
        // Noise draws are part of the seed stream: different seeds may
        // diverge, but both stay valid outcomes.
        let mut e3 = env();
        let c = tuned.search(&mut e3, &mut p, &module, 24);
        assert!(c.speedup.is_finite() && c.speedup > 0.0);
    }

    #[test]
    fn driver_is_worker_count_invariant_under_measurement_noise() {
        // Searchers reseed the noise stream from the search seed, so
        // outcomes do not depend on the stream position the previous
        // module's search left behind — i.e. not on worker count.
        let mut config = EnvConfig::small();
        config.noise_seed = Some(13);
        let template = OptimizationEnv::new(config, CostModel::new(MachineModel::default()));
        let p = policy(9);
        let batch = modules();
        for searcher in [
            Box::new(GreedyPolicy) as Box<dyn Searcher<PolicyNetwork>>,
            Box::new(BeamSearch::new(2)),
            Box::new(RandomSearch::new(2)),
        ] {
            let serial =
                SearchDriver::new(1)
                    .with_seed(4)
                    .run(&template, &p, searcher.as_ref(), &batch);
            let parallel =
                SearchDriver::new(3)
                    .with_seed(4)
                    .run(&template, &p, searcher.as_ref(), &batch);
            for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
                assert_eq!(
                    deterministic_fields(a),
                    deterministic_fields(b),
                    "{} must stay invariant with noise enabled",
                    a.searcher
                );
                assert_eq!(a.baseline_s, b.baseline_s, "baseline is noise-free");
            }
        }
    }

    #[test]
    fn random_search_floor_is_the_baseline() {
        let mut e = env();
        let mut p = policy(4);
        let outcome = RandomSearch::new(3).search(&mut e, &mut p, &modules()[0], 5);
        assert!(
            outcome.speedup >= 1.0 - 1e-12,
            "the do-nothing schedule bounds random search below"
        );
    }

    #[test]
    fn driver_outcomes_are_worker_count_invariant() {
        let batch: Vec<Module> = modules().into_iter().chain(modules()).collect();
        let template = env();
        let p = policy(5);
        for searcher in [
            Box::new(Mcts::new(6).with_branch(2)) as Box<dyn Searcher<PolicyNetwork>>,
            Box::new(RandomSearch::new(3)),
            Box::new(BeamSearch::new(2)),
        ] {
            let serial =
                SearchDriver::new(1)
                    .with_seed(9)
                    .run(&template, &p, searcher.as_ref(), &batch);
            let parallel =
                SearchDriver::new(3)
                    .with_seed(9)
                    .run(&template, &p, searcher.as_ref(), &batch);
            assert_eq!(serial.outcomes.len(), parallel.outcomes.len());
            for (a, b) in serial.outcomes.iter().zip(&parallel.outcomes) {
                assert_eq!(
                    deterministic_fields(a),
                    deterministic_fields(b),
                    "{} must be thread-count invariant",
                    a.searcher
                );
            }
        }
    }

    #[test]
    fn driver_shares_one_cache_across_the_batch() {
        // The same module three times: after the first search, the others'
        // lookups are (almost) all hits on the shared table.
        let batch = vec![chain(64, 64, 64), chain(64, 64, 64), chain(64, 64, 64)];
        let template = env();
        let p = policy(6);
        let report = SearchDriver::new(2).run(&template, &p, &GreedyPolicy, &batch);
        assert_eq!(report.outcomes.len(), 3);
        assert!(
            report.shared_cache_hits > 0,
            "duplicate modules must hit the shared table"
        );
        assert!(report.shared_cache_hit_rate() > 0.0);
        assert!(report.geomean_speedup() > 0.0);
        assert_eq!(
            (report.shared_cache_hits + report.shared_cache_misses) as usize,
            report
                .outcomes
                .iter()
                .map(SearchOutcome::total_lookups)
                .sum::<usize>(),
            "driver-level and outcome-level lookup accounting agree"
        );
    }

    /// FNV-1a over a debug rendering: a hasher that is stable across Rust
    /// releases (unlike `DefaultHasher`), for golden fixtures.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    #[test]
    fn mcts_default_outcome_matches_the_pr3_golden_fixture() {
        // Golden values captured from the pre-progressive-widening searcher
        // (PR 3 head) on this exact (module, policy, seed) triple. The
        // widening knob defaults off and MUST keep reproducing these bits;
        // if an intentional behavior change breaks this, re-capture the
        // fixture and say so in the commit.
        let mut e = env();
        let mut p = policy(41);
        let mut b = ModuleBuilder::new("golden_chain");
        let a = b.argument("A", vec![96, 64]);
        let w = b.argument("B", vec![64, 128]);
        let mm = b.matmul(a, w);
        b.relu(mm);
        let module = b.finish();
        let outcome = Mcts::new(24)
            .with_branch(3)
            .search(&mut e, &mut p, &module, 2026);
        assert_eq!(outcome.best_s.to_bits(), 0x3f06bcbee69073a8);
        assert_eq!(outcome.speedup.to_bits(), 0x4044faca31d03512);
        assert_eq!(outcome.baseline_s.to_bits(), 0x3f5dd0531cbb2a40);
        assert_eq!(outcome.nodes_expanded, 10);
        assert_eq!(
            fnv1a(format!("{:?}", outcome.best_actions).as_bytes()),
            0x2777147686d1c6a8
        );
        assert_eq!(
            fnv1a(format!("{:?}", outcome.best_schedule).as_bytes()),
            0xd4ec86798fd6e591
        );
    }

    #[test]
    fn widening_schedule_is_monotone_and_clamped() {
        for (c, alpha) in [(0.5, 0.4), (1.0, 0.5), (2.0, 0.7), (1.5, 0.0)] {
            let mut last = 0usize;
            for visits in 0..200 {
                let allowed = MctsConfig::widened_children(c, alpha, visits as f64);
                assert!(allowed >= 1, "a node always has one selectable edge");
                assert!(
                    allowed >= last,
                    "widening must be monotone in visits (c={c}, alpha={alpha}, v={visits})"
                );
                last = allowed;
            }
            assert!(last > 1, "the schedule must actually widen (c={c})");
        }
        // Degenerate coefficients still yield a sane floor.
        assert_eq!(MctsConfig::widened_children(0.0, 0.5, 100.0), 1);
        assert_eq!(MctsConfig::widened_children(1.0, 0.5, 0.0), 1);
    }

    #[test]
    fn widened_mcts_is_seed_deterministic_and_valid() {
        let module = chain(96, 48, 64);
        let widened = Mcts::new(12)
            .with_branch(4)
            .with_progressive_widening(1.0, 0.6);
        let mut p = policy(23);
        let (mut e1, mut e2) = (env(), env());
        let a = widened.search(&mut e1, &mut p, &module, 31);
        let b = widened.search(&mut e2, &mut p, &module, 31);
        assert_eq!(deterministic_fields(&a), deterministic_fields(&b));
        assert!(a.speedup >= 1.0 - 1e-12);
    }

    #[test]
    fn portfolio_round_robin_reports_the_best_member_with_attribution() {
        let module = chain(64, 64, 64);
        let portfolio = Portfolio::round_robin()
            .with_member(GreedyPolicy)
            .with_member(BeamSearch::new(3))
            .with_member(Mcts::new(6).with_branch(2));
        let mut e = env();
        let mut p = policy(5);
        let outcome = portfolio.search(&mut e, &mut p, &module, 7);
        assert_eq!(outcome.searcher, "portfolio-rr-3");
        assert_eq!(outcome.members.len(), 3);
        let winner_rows: Vec<_> = outcome.members.iter().filter(|m| m.winner).collect();
        assert_eq!(winner_rows.len(), 1, "exactly one member wins");
        assert_eq!(winner_rows[0].best_s, outcome.best_s);
        // The portfolio's best is the best of its members, and beam's
        // greedy seeding makes it at least greedy.
        let best_member = outcome
            .members
            .iter()
            .map(|m| m.speedup)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(outcome.speedup, best_member);
        assert!(outcome.speedup >= outcome.members[0].speedup);
        // Aggregate accounting is the sum of the member rows.
        assert_eq!(
            outcome.nodes_expanded,
            outcome.members.iter().map(|m| m.nodes_expanded).sum()
        );
        assert_eq!(
            outcome.total_lookups(),
            outcome
                .members
                .iter()
                .map(MemberOutcome::total_lookups)
                .sum::<usize>()
        );
        assert!(outcome
            .members
            .iter()
            .all(|m| m.status == MemberStatus::Completed));
    }

    #[test]
    fn portfolio_budget_ledger_skips_members_deterministically() {
        let module = chain(64, 64, 64);
        let mut e = env();
        let mut p = policy(5);
        // Measure greedy's spend, then cap the roster budget so the ledger
        // is exhausted right after the first member.
        let greedy_lookups = GreedyPolicy
            .search(&mut env(), &mut policy(5), &module, 7)
            .total_lookups() as u64;
        let portfolio = Portfolio::round_robin()
            .with_member(GreedyPolicy)
            .with_member(BeamSearch::new(3))
            .with_member(RandomSearch::new(4))
            .with_budget(greedy_lookups);
        let outcome = portfolio.search(&mut e, &mut p, &module, 7);
        assert_eq!(outcome.members[0].status, MemberStatus::Completed);
        assert_eq!(outcome.members[1].status, MemberStatus::Skipped);
        assert_eq!(outcome.members[2].status, MemberStatus::Skipped);
        assert_eq!(outcome.members[1].evaluations, 0);
        // A zero budget runs nobody but keeps the attribution rows.
        let starved = Portfolio::round_robin()
            .with_member(GreedyPolicy)
            .with_budget(0);
        let outcome = starved.search(&mut e, &mut p, &module, 7);
        assert_eq!(outcome.speedup, 1.0);
        assert_eq!(outcome.members.len(), 1);
        assert_eq!(outcome.members[0].status, MemberStatus::Skipped);
    }

    #[test]
    fn portfolio_racing_is_deterministic_and_counts_the_winner_prefix() {
        let module = chain(96, 48, 64);
        // Target 0.0: any completed search reaches it, so greedy (rank 0)
        // always claims and the outcome counts exactly greedy's work.
        let quick = Portfolio::racing(0.0)
            .with_member(GreedyPolicy)
            .with_member(BeamSearch::new(3))
            .with_member(Mcts::new(16).with_branch(3));
        let mut p = policy(9);
        let mut e = env();
        let raced = quick.search(&mut e, &mut p, &module, 3);
        let greedy = GreedyPolicy.search(&mut env(), &mut p, &module, 3);
        assert_eq!(raced.best_actions, greedy.best_actions);
        assert_eq!(raced.best_s, greedy.best_s);
        assert_eq!(raced.nodes_expanded, greedy.nodes_expanded);
        assert!(raced.members[0].winner && raced.members[0].reached_target);

        // An unreachable target: nobody claims, every member completes,
        // and the outcome is the deterministic best-of-roster.
        let full = Portfolio::racing(f64::INFINITY)
            .with_member(GreedyPolicy)
            .with_member(BeamSearch::new(3))
            .with_member(Mcts::new(16).with_branch(3));
        let (mut e1, mut e2) = (env(), env());
        let a = full.search(&mut e1, &mut p, &module, 3);
        let b = full.search(&mut e2, &mut p, &module, 3);
        assert_eq!(deterministic_fields(&a), deterministic_fields(&b));
        assert_eq!(a.total_lookups(), b.total_lookups());
        assert!(a
            .members
            .iter()
            .all(|m| m.status == MemberStatus::Completed));
        assert!(a.speedup >= a.members.iter().map(|m| m.speedup).fold(0.0, f64::max) - 1e-15);
    }

    #[test]
    fn driver_run_portfolio_aggregates_member_attribution() {
        let batch = modules();
        let template = env();
        let p = policy(6);
        let portfolio = Portfolio::round_robin()
            .with_member(GreedyPolicy)
            .with_member(BeamSearch::new(2));
        let report = SearchDriver::new(2)
            .with_seed(5)
            .run_portfolio(&template, &p, &portfolio, &batch);
        assert_eq!(report.outcomes.len(), batch.len());
        let attribution = report.member_attribution();
        assert_eq!(attribution.len(), 2);
        assert_eq!(attribution[0].member, "greedy-policy");
        assert_eq!(attribution[1].member, "beam-2");
        assert_eq!(
            attribution.iter().map(|m| m.wins).sum::<usize>(),
            batch.len(),
            "every module has exactly one winning member"
        );
        // Non-portfolio batches have no attribution rows.
        let plain = SearchDriver::new(1).run(&template, &p, &GreedyPolicy, &batch);
        assert!(plain.member_attribution().is_empty());
    }

    #[test]
    fn report_edge_cases_divide_safely() {
        // Empty batch: geomean is 1.0 (the identity of the geometric
        // mean), hit-rate 0.0 — not NaN from 0/0.
        let empty = BatchSearchReport {
            outcomes: Vec::new(),
            shared_cache_hits: 0,
            shared_cache_misses: 0,
            wall_s: 0.0,
        };
        assert_eq!(empty.geomean_speedup(), 1.0);
        assert_eq!(empty.shared_cache_hit_rate(), 0.0);
        assert_eq!(empty.total_evaluations(), 0);
        // Zero lookups: cache_hit_rate is 0.0, not NaN.
        let outcome = SearchOutcome {
            searcher: "none".to_string(),
            module: "m".to_string(),
            baseline_s: 1.0,
            best_s: 1.0,
            speedup: 1.0,
            best_actions: Vec::new(),
            best_schedule: Vec::new(),
            nodes_expanded: 0,
            evaluations: 0,
            cache_hits: 0,
            members: Vec::new(),
        };
        assert_eq!(outcome.cache_hit_rate(), 0.0);
        assert_eq!(outcome.total_lookups(), 0);
        // An all-zero-speedup batch stays finite through the ln-clamp.
        let degenerate = BatchSearchReport {
            outcomes: vec![SearchOutcome {
                speedup: 0.0,
                ..outcome
            }],
            shared_cache_hits: 1,
            shared_cache_misses: 0,
            wall_s: 0.0,
        };
        assert!(degenerate.geomean_speedup().is_finite());
        assert_eq!(degenerate.shared_cache_hit_rate(), 1.0);
    }

    #[test]
    fn stop_token_rank_ordering() {
        let token = StopToken::new();
        assert_eq!(token.claimant(), None);
        assert!(!token.stops(0));
        token.claim(2);
        assert_eq!(token.claimant(), Some(2));
        assert!(token.stops(3), "higher ranks honor the claim");
        assert!(!token.stops(2), "the claimant itself keeps running");
        assert!(!token.stops(1), "lower ranks are never preempted");
        token.claim(5);
        assert_eq!(token.claimant(), Some(2), "the lowest claim sticks");
        token.claim(0);
        assert_eq!(token.claimant(), Some(0));
        assert!(token.stops(1));
    }

    #[test]
    fn baseline_adapter_exposes_comparison_systems_as_searchers() {
        let mut e = env();
        let mut p = policy(7);
        let module = chain(128, 128, 128);
        for searcher in [
            Box::new(BaselineSearcher::new(VendorLibrary::new(
                VendorMode::Compiled,
            ))) as Box<dyn Searcher<PolicyNetwork>>,
            Box::new(BaselineSearcher::new(MullapudiAutoscheduler::new())),
        ] {
            let outcome = searcher.search(&mut e, &mut p, &module, 0);
            assert!(
                outcome.speedup > 1.0,
                "{} should beat MLIR",
                outcome.searcher
            );
            assert!(!outcome.best_schedule.is_empty());
        }
    }
}
