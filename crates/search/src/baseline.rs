//! Adapter exposing the comparison systems of `mlir-rl-baselines` through
//! the [`Searcher`] interface, so batch comparisons (and the `exp_search`
//! harness) treat the paper's baselines and the schedule searchers
//! uniformly.

use mlir_rl_agent::PolicyModel;
use mlir_rl_baselines::{evaluate, mlir_baseline_time, Baseline};
use mlir_rl_env::OptimizationEnv;
use mlir_rl_ir::Module;

use crate::searcher::{SearchOutcome, Searcher};

/// Wraps a [`Baseline`] scheduler (vendor library, Mullapudi, Halide RL) as
/// a [`Searcher`]. The baseline produces one schedule per module with its
/// own code-generation quality; it is evaluated with the baseline crate's
/// cost model (not the environment's cache — the quality differs), so
/// `evaluations` counts its two direct estimator runs and `cache_hits` is
/// zero.
#[derive(Debug, Clone)]
pub struct BaselineSearcher<B> {
    baseline: B,
}

impl<B: Baseline> BaselineSearcher<B> {
    /// Wraps a baseline scheduler.
    pub fn new(baseline: B) -> Self {
        Self { baseline }
    }
}

impl<B, P> Searcher<P> for BaselineSearcher<B>
where
    B: Baseline + Send + Sync,
    P: PolicyModel,
{
    fn name(&self) -> String {
        self.baseline.name()
    }

    fn search(
        &self,
        env: &mut OptimizationEnv,
        _policy: &mut P,
        module: &Module,
        _seed: u64,
    ) -> SearchOutcome {
        let machine = env.cost_model().machine().clone();
        let result = self.baseline.optimize(module);
        let best_s = evaluate(&result, &machine);
        let baseline_s = mlir_baseline_time(module, &machine);
        SearchOutcome {
            searcher: self.baseline.name(),
            module: module.name().to_string(),
            baseline_s,
            best_s,
            speedup: baseline_s / best_s.max(1e-12),
            best_actions: Vec::new(),
            best_schedule: result
                .scheduled
                .states()
                .iter()
                .map(|s| s.schedule.clone())
                .collect(),
            nodes_expanded: 1,
            evaluations: 2,
            cache_hits: 0,
            members: Vec::new(),
        }
    }
}
