//! Beam search with policy-ranked expansion and cost-model scoring.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mlir_rl_agent::PolicyModel;
use mlir_rl_env::{Action, EpisodeSnapshot, Observation, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_obs::EventKind;

use crate::greedy::greedy_rollout;
use crate::searcher::{
    finish_outcome, max_episode_steps, reseed_for_search, BestFound, LookupMeter, SearchOutcome,
    Searcher, StopToken,
};

/// Beam search over the schedule space.
///
/// At every step the **whole frontier** is ranked in one batched policy
/// inference ([`PolicyModel::rank_actions_batch`]: per state, the greedy
/// action first, then sampled candidates by descending log-probability —
/// one blocked matmul per network layer for all live beam states instead
/// of one forward pass per state and draw); children are scored with the
/// cost model through the shared evaluation cache, and the best `width`
/// children (lowest estimated time) survive. The search is seeded with the
/// plain greedy trajectory, so the outcome is **never worse than
/// [`crate::GreedyPolicy`]**, and with `width == 1` the expansion is
/// exactly the greedy action at every step — step-for-step identical to
/// greedy decoding (property-tested; the batched ranking is bit-identical
/// to ranking each state separately).
///
/// The per-call RNG contract is load-bearing beyond this module: each
/// `rank_actions_batch` call consumes exactly the draws its oversampled
/// ranking needs, in frontier order, and nothing in between. The service's
/// cross-request inference aggregator relies on this to route the same
/// calls through a shared batch pipeline (`mlir_rl_agent::aggregator`)
/// while keeping every trajectory bit-identical to the direct path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamSearch {
    /// Beam width: surviving states per step *and* candidate actions ranked
    /// per expansion.
    pub width: usize,
}

impl BeamSearch {
    /// Creates a beam search with the given width (clamped to at least 1).
    pub fn new(width: usize) -> Self {
        Self {
            width: width.max(1),
        }
    }
}

impl Default for BeamSearch {
    fn default() -> Self {
        Self::new(4)
    }
}

/// A live (not yet terminal) state of the beam. Terminal children are
/// folded straight into the best-so-far instead of occupying beam slots.
struct BeamState {
    snapshot: EpisodeSnapshot,
    actions: Vec<Action>,
    /// Estimated time of the state's schedule (lower is better).
    score: f64,
}

impl<P: PolicyModel> Searcher<P> for BeamSearch {
    fn name(&self) -> String {
        format!("beam-{}", self.width)
    }

    fn search(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome {
        self.run(env, policy, module, seed, 0, &StopToken::new())
    }

    fn search_with_stop(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        self.run(env, policy, module, seed, rank, stop)
    }
}

impl BeamSearch {
    /// The search body. `stop` is checked between depths: a claim by a
    /// lower rank ends the search with the best schedule found so far
    /// (never worse than the greedy seed); a fresh token never fires.
    fn run<P: PolicyModel>(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        let meter = LookupMeter::start(env);
        reseed_for_search(env, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut nodes = 0usize;

        // Seed: the pure greedy trajectory. This pins the floor of the
        // search at greedy decoding even if the greedy path is later pruned
        // out of the beam.
        let rollout = greedy_rollout(env, policy, module, &mut rng);
        let baseline_s = rollout.baseline_s;
        let mut best_s = rollout.final_s;
        let mut best_actions = rollout.actions;
        nodes += rollout.steps;

        // Root of the beam: a fresh episode (cache-hot after the seed).
        let obs = env.reset(module.clone());
        let mut beams = if obs.is_some() {
            vec![BeamState {
                snapshot: env.snapshot(),
                actions: Vec::new(),
                score: env.peek_time_s(),
            }]
        } else {
            Vec::new()
        };

        let max_depth = max_episode_steps(env, module);
        let probe = env.probe().clone();
        for depth in 0..max_depth {
            if beams.is_empty() || stop.stops(rank) {
                break;
            }
            probe.emit(
                EventKind::BeamDepth,
                None,
                [depth as u64, beams.len() as u64, 0],
            );
            // Rank the whole frontier in one batched policy inference. The
            // policy RNG is consumed per state in beam order and the
            // environment steps run afterwards in the same order as the
            // historical per-state loop, so outcomes are bit-identical.
            let frontier: Vec<Observation> = beams
                .iter()
                .map(|beam| {
                    env.restore(&beam.snapshot);
                    env.current_observation()
                        .expect("live beam state has an observation")
                })
                .collect();
            let frontier_refs: Vec<&Observation> = frontier.iter().collect();
            let ranked = policy.rank_actions_batch(&frontier_refs, self.width, &mut rng);

            let mut children = Vec::new();
            for (beam, records) in beams.iter().zip(ranked) {
                for record in records {
                    env.restore(&beam.snapshot);
                    let outcome = env.step(&record.action);
                    nodes += 1;
                    let score = env.peek_time_s();
                    let mut actions = beam.actions.clone();
                    actions.push(record.action);
                    if outcome.done {
                        // Terminal child: a complete schedule. Fold it into
                        // the best-so-far; it needs no beam slot (there is
                        // nothing left to expand from it).
                        if score < best_s {
                            best_s = score;
                            best_actions = actions;
                        }
                    } else {
                        children.push(BeamState {
                            snapshot: env.snapshot(),
                            actions,
                            score,
                        });
                    }
                }
            }
            // Keep the `width` most promising live states.
            children.sort_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .expect("estimated times are finite")
            });
            children.truncate(self.width);
            beams = children;
        }

        finish_outcome(
            Searcher::<P>::name(self),
            env,
            module,
            &meter,
            baseline_s,
            BestFound {
                time_s: best_s,
                actions: best_actions,
            },
            nodes,
        )
    }
}
