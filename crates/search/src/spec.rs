//! Declarative search specifications — the request-level description of a
//! searcher.
//!
//! A [`SearchSpec`] is what a serving request carries instead of a live
//! [`Searcher`] object: a plain, owned, thread-safe description (greedy /
//! beam / MCTS / random / a whole portfolio roster) that any worker can
//! [`SearchSpec::build`] into the corresponding searcher on its own thread.
//! Keeping the spec declarative is what lets a long-lived service queue
//! requests, validate them at admission ([`SearchSpec::try_validate`]) and
//! stay deterministic: two workers building the same spec get searchers
//! that behave identically under the same seed.

use serde::{Deserialize, Serialize};

use mlir_rl_agent::PolicyModel;
use mlir_rl_env::EnvConfig;
use mlir_rl_ir::Module;

use crate::beam::BeamSearch;
use crate::greedy::GreedyPolicy;
use crate::mcts::Mcts;
use crate::portfolio::{Portfolio, PortfolioMode};
use crate::random::RandomSearch;
use crate::searcher::Searcher;

/// A declarative description of a schedule search, buildable into a
/// [`Searcher`] on any worker thread.
///
/// Each variant mirrors one searcher of this crate; [`SearchSpec::name`]
/// matches the display name the built searcher reports in its outcomes.
/// Custom [`Searcher`] objects (e.g. the baseline adapters) have no spec —
/// they go through the borrowed batch entry points instead of the request
/// queue.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SearchSpec {
    /// Greedy policy decoding ([`GreedyPolicy`]) — the paper's deployment
    /// behavior.
    Greedy,
    /// Policy-ranked beam search ([`BeamSearch`]).
    Beam {
        /// Beam width (1 = greedy decoding).
        width: usize,
    },
    /// Monte-Carlo tree search ([`Mcts`]).
    Mcts {
        /// Selection/expansion/playout iterations.
        iterations: usize,
        /// Candidate actions ranked per expanded node.
        branch: usize,
        /// Optional progressive widening `(c, alpha)`; `None` keeps every
        /// ranked edge selectable (the bitwise-preserving default).
        widening: Option<(f64, f64)>,
    },
    /// Budgeted uniform-random search ([`RandomSearch`]).
    Random {
        /// Episodes sampled.
        episodes: usize,
    },
    /// A roster of member specs run as one [`Portfolio`] on a shared
    /// evaluation cache.
    Portfolio {
        /// Member specs, in roster-rank order (rank doubles as the racing
        /// priority).
        members: Vec<SearchSpec>,
        /// Round-robin or racing execution.
        mode: PortfolioMode,
        /// Optional cap on the roster's total cost-model lookups (the
        /// common eval-budget ledger of the portfolio).
        budget: Option<u64>,
    },
}

impl SearchSpec {
    /// A beam spec.
    pub fn beam(width: usize) -> Self {
        Self::Beam { width }
    }

    /// An MCTS spec with the given iteration budget and branching factor,
    /// widening off.
    pub fn mcts(iterations: usize, branch: usize) -> Self {
        Self::Mcts {
            iterations,
            branch,
            widening: None,
        }
    }

    /// A random-search spec.
    pub fn random(episodes: usize) -> Self {
        Self::Random { episodes }
    }

    /// A round-robin portfolio spec over the given members.
    pub fn round_robin(members: Vec<SearchSpec>) -> Self {
        Self::Portfolio {
            members,
            mode: PortfolioMode::RoundRobin,
            budget: None,
        }
    }

    /// A racing portfolio spec over the given members.
    pub fn racing(members: Vec<SearchSpec>, target_speedup: f64) -> Self {
        Self::Portfolio {
            members,
            mode: PortfolioMode::Racing { target_speedup },
            budget: None,
        }
    }

    /// Display name of the searcher this spec builds — identical to the
    /// [`Searcher::name`] of [`SearchSpec::build`]'s result.
    pub fn name(&self) -> String {
        match self {
            Self::Greedy => "greedy-policy".to_string(),
            Self::Beam { width } => format!("beam-{}", width.max(&1)),
            Self::Mcts { iterations, .. } => format!("mcts-{}", iterations.max(&1)),
            Self::Random { episodes } => format!("random-{}", episodes.max(&1)),
            Self::Portfolio { members, mode, .. } => match mode {
                PortfolioMode::RoundRobin => format!("portfolio-rr-{}", members.len()),
                PortfolioMode::Racing { .. } => format!("portfolio-race-{}", members.len()),
            },
        }
    }

    /// A deterministic upper-bound estimate of the cost-model lookups a
    /// search of this spec may spend on `module` under `env` — the unit
    /// reservation-style budget admission charges *before* the search runs
    /// (reconciled against the real spend afterwards). The estimate is a
    /// pure function of `(spec, env, module)`, never of load, cache warmth
    /// or worker count, which is what makes admission decisions derived
    /// from it reproducible for a fixed submission sequence. The formulas
    /// bound each searcher by its episode budget times the driver's
    /// episode-length bound; they deliberately over-reserve (refunds are
    /// cheap, blown ledgers are not).
    pub fn cost_estimate(&self, env: &EnvConfig, module: &Module) -> u64 {
        // The same malformed-module-tolerant bound `max_episode_steps`
        // uses, plus one lookup for the baseline estimate.
        let episode = ((module.ops().len() as u64).saturating_add(1))
            .saturating_mul(env.max_schedule_len as u64 + 3);
        let estimate = match self {
            Self::Greedy => episode.saturating_add(1),
            Self::Beam { width } => episode
                .saturating_mul((*width as u64).saturating_add(1))
                .saturating_add(1),
            Self::Mcts { iterations, .. } => episode
                .saturating_mul((*iterations as u64).saturating_add(1))
                .saturating_add(1),
            Self::Random { episodes } => episode
                .saturating_mul((*episodes as u64).saturating_add(1))
                .saturating_add(1),
            Self::Portfolio {
                members, budget, ..
            } => {
                let roster: u64 = members.iter().fold(0u64, |sum, m| {
                    sum.saturating_add(m.cost_estimate(env, module))
                });
                // A portfolio's own ledger already caps its members' spend.
                budget.map_or(roster, |cap| roster.min(cap.saturating_add(1)))
            }
        };
        estimate.max(1)
    }

    /// Checks the spec for problems a built searcher could not recover
    /// from, returning a human-readable description of the first one. Used
    /// by request admission so malformed requests become response errors
    /// instead of degenerate searches.
    pub fn try_validate(&self) -> Result<(), String> {
        match self {
            Self::Greedy => Ok(()),
            Self::Beam { width } => {
                if *width == 0 {
                    Err("beam width must be >= 1".to_string())
                } else {
                    Ok(())
                }
            }
            Self::Mcts {
                iterations,
                branch,
                widening,
            } => {
                if *iterations == 0 {
                    return Err("mcts iteration budget must be >= 1".to_string());
                }
                if *branch == 0 {
                    return Err("mcts branching factor must be >= 1".to_string());
                }
                if let Some((c, alpha)) = widening {
                    if !c.is_finite() || !alpha.is_finite() || *c < 0.0 || *alpha < 0.0 {
                        return Err(format!(
                            "mcts widening coefficients must be finite and >= 0 \
                             (got c={c}, alpha={alpha})"
                        ));
                    }
                }
                Ok(())
            }
            Self::Random { episodes } => {
                if *episodes == 0 {
                    Err("random search episode budget must be >= 1".to_string())
                } else {
                    Ok(())
                }
            }
            Self::Portfolio { members, mode, .. } => {
                if members.is_empty() {
                    return Err("portfolio roster must not be empty".to_string());
                }
                if let PortfolioMode::Racing { target_speedup } = mode {
                    if target_speedup.is_nan() {
                        return Err("racing target speedup must not be NaN".to_string());
                    }
                }
                members.iter().try_for_each(SearchSpec::try_validate)
            }
        }
    }

    /// Builds the searcher this spec describes. Degenerate numeric fields
    /// are clamped the same way the searchers' own constructors clamp them;
    /// reject them earlier with [`SearchSpec::try_validate`] when a hard
    /// error is wanted instead.
    pub fn build<P: PolicyModel + 'static>(&self) -> Box<dyn Searcher<P>> {
        match self {
            Self::Greedy => Box::new(GreedyPolicy),
            Self::Beam { width } => Box::new(BeamSearch::new(*width)),
            Self::Mcts {
                iterations,
                branch,
                widening,
            } => {
                let mut mcts = Mcts::new(*iterations).with_branch(*branch);
                if let Some((c, alpha)) = widening {
                    mcts = mcts.with_progressive_widening(*c, *alpha);
                }
                Box::new(mcts)
            }
            Self::Random { episodes } => Box::new(RandomSearch::new(*episodes)),
            Self::Portfolio {
                members,
                mode,
                budget,
            } => {
                let mut portfolio = members.iter().fold(Portfolio::new(*mode), |p, member| {
                    p.with_boxed_member(member.build())
                });
                if let Some(cap) = budget {
                    portfolio = portfolio.with_budget(*cap);
                }
                Box::new(portfolio)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlir_rl_agent::{PolicyHyperparams, PolicyNetwork};
    use mlir_rl_costmodel::{CostModel, MachineModel};
    use mlir_rl_env::{EnvConfig, OptimizationEnv};
    use mlir_rl_ir::ModuleBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn specs() -> Vec<SearchSpec> {
        vec![
            SearchSpec::Greedy,
            SearchSpec::beam(3),
            SearchSpec::mcts(6, 2),
            SearchSpec::Mcts {
                iterations: 6,
                branch: 2,
                widening: Some((1.0, 0.6)),
            },
            SearchSpec::random(3),
            SearchSpec::round_robin(vec![SearchSpec::Greedy, SearchSpec::beam(2)]),
            SearchSpec::racing(vec![SearchSpec::Greedy, SearchSpec::beam(2)], 2.0),
        ]
    }

    #[test]
    fn names_match_built_searchers() {
        for spec in specs() {
            let built: Box<dyn Searcher<PolicyNetwork>> = spec.build();
            assert_eq!(spec.name(), built.name(), "{spec:?}");
            assert_eq!(spec.try_validate(), Ok(()));
        }
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        for (spec, needle) in [
            (SearchSpec::beam(0), "beam width"),
            (SearchSpec::mcts(0, 2), "iteration budget"),
            (SearchSpec::mcts(4, 0), "branching factor"),
            (
                SearchSpec::Mcts {
                    iterations: 4,
                    branch: 2,
                    widening: Some((f64::NAN, 0.5)),
                },
                "widening",
            ),
            (SearchSpec::random(0), "episode budget"),
            (SearchSpec::round_robin(Vec::new()), "roster"),
            (
                SearchSpec::racing(vec![SearchSpec::Greedy], f64::NAN),
                "NaN",
            ),
            (
                SearchSpec::round_robin(vec![SearchSpec::beam(0)]),
                "beam width",
            ),
        ] {
            let err = spec.try_validate().unwrap_err();
            assert!(err.contains(needle), "{spec:?}: {err}");
        }
    }

    #[test]
    fn cost_estimates_bound_real_spend_and_are_pure() {
        let config = EnvConfig::small();
        let env = OptimizationEnv::new(config.clone(), CostModel::new(MachineModel::default()));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut policy = PolicyNetwork::new(
            config.clone(),
            PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            },
            &mut rng,
        );
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![64, 64]);
        let w = b.argument("B", vec![64, 64]);
        b.matmul(a, w);
        let module = b.finish();

        for spec in specs() {
            let estimate = spec.cost_estimate(&config, &module);
            assert!(estimate >= 1, "{spec:?}");
            // Pure in (spec, env, module): repeated calls agree.
            assert_eq!(estimate, spec.cost_estimate(&config, &module), "{spec:?}");
            // An upper bound on what the built searcher actually spends.
            let outcome =
                spec.build::<PolicyNetwork>()
                    .search(&mut env.clone(), &mut policy, &module, 11);
            assert!(
                outcome.total_lookups() as u64 <= estimate,
                "{spec:?}: spent {} over the {estimate} reservation",
                outcome.total_lookups()
            );
        }
        // A portfolio's own budget caps its reservation.
        let capped = SearchSpec::Portfolio {
            members: vec![SearchSpec::beam(4), SearchSpec::random(8)],
            mode: PortfolioMode::RoundRobin,
            budget: Some(10),
        };
        assert!(capped.cost_estimate(&config, &module) <= 11);
    }

    #[test]
    fn built_spec_searches_like_the_hand_built_searcher() {
        let mut env =
            OptimizationEnv::new(EnvConfig::small(), CostModel::new(MachineModel::default()));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut policy = PolicyNetwork::new(
            EnvConfig::small(),
            PolicyHyperparams {
                hidden_size: 16,
                backbone_layers: 1,
            },
            &mut rng,
        );
        let mut b = ModuleBuilder::new("m");
        let a = b.argument("A", vec![64, 64]);
        let w = b.argument("B", vec![64, 64]);
        b.matmul(a, w);
        let module = b.finish();

        let from_spec =
            SearchSpec::beam(2)
                .build()
                .search(&mut env.clone(), &mut policy, &module, 11);
        let by_hand = BeamSearch::new(2).search(&mut env, &mut policy, &module, 11);
        assert_eq!(from_spec.best_actions, by_hand.best_actions);
        assert_eq!(from_spec.best_s, by_hand.best_s);
        assert_eq!(from_spec.nodes_expanded, by_hand.nodes_expanded);
    }
}
