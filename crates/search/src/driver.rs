//! The batch optimization driver: many modules, many threads, one cache.

use std::time::Instant;

use mlir_rl_agent::{episode_seed, PolicyModel};
use mlir_rl_env::OptimizationEnv;
use mlir_rl_ir::Module;

use crate::portfolio::Portfolio;
use crate::searcher::{MemberStatus, SearchOutcome, Searcher, StopToken};

/// One unit of work for [`SearchDriver::run_jobs`]: a module, the searcher
/// to run on it, the search seed, and an optional racing/cancellation stop
/// token with the rank the search runs at. This is the driver's most
/// general interface — the serving layer maps each queued request to one
/// job, so a batch run really is just N requests on one shared cache; the
/// homogeneous [`SearchDriver::run`] entry point builds its jobs from a
/// single searcher and per-index seeds.
pub struct SearchJob<'a, P: PolicyModel> {
    /// Module to optimize.
    pub module: &'a Module,
    /// Searcher to run.
    pub searcher: &'a (dyn Searcher<P> + 'a),
    /// Search seed (the determinism contract is per-job: same module,
    /// searcher, policy and seed ⇒ same outcome, any worker count).
    pub seed: u64,
    /// Cooperative early-stop token and the rank this job checks it at
    /// (`None` runs to completion unconditionally).
    pub stop: Option<(&'a StopToken, usize)>,
}

impl<'a, P: PolicyModel> SearchJob<'a, P> {
    /// A plain run-to-completion job.
    pub fn new(module: &'a Module, searcher: &'a (dyn Searcher<P> + 'a), seed: u64) -> Self {
        Self {
            module,
            searcher,
            seed,
            stop: None,
        }
    }

    fn run(&self, env: &mut OptimizationEnv, policy: &mut P) -> SearchOutcome {
        match self.stop {
            Some((stop, rank)) => {
                self.searcher
                    .search_with_stop(env, policy, self.module, self.seed, rank, stop)
            }
            None => self.searcher.search(env, policy, self.module, self.seed),
        }
    }
}

/// Fans a batch of modules out over worker threads, each running the same
/// [`Searcher`] with its own environment handle and policy snapshot —
/// the batch-serving entry point of the search subsystem.
///
/// Before the fan-out the template environment's evaluation cache is
/// switched to the sharded thread-shared backend, so every worker (and
/// every branch of every search) hits one table; the report carries the
/// table's global hit/miss counters for the batch. Each module's search is
/// seeded with `episode_seed(base_seed, module_index)`, so the outcomes are
/// **bit-for-bit identical for any worker count** (cached values are
/// deterministic; only cache hit/miss *counts* may differ) — the worker
/// count is purely a throughput knob, exactly like the rollout engine's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchDriver {
    /// Worker threads (1 = search in the calling thread).
    pub workers: usize,
    /// Base seed mixed with each module index.
    pub base_seed: u64,
}

impl SearchDriver {
    /// Creates a driver with the given worker count and base seed 0.
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            base_seed: 0,
        }
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Optimizes every module of the batch with `searcher`, returning
    /// outcomes in module order plus the batch-wide shared-cache
    /// accounting.
    pub fn run<P, S>(
        &self,
        env_template: &OptimizationEnv,
        policy: &P,
        searcher: &S,
        modules: &[Module],
    ) -> BatchSearchReport
    where
        P: PolicyModel,
        S: Searcher<P> + ?Sized,
    {
        let jobs: Vec<SearchJob<P>> = modules
            .iter()
            .enumerate()
            .map(|(index, module)| {
                SearchJob::new(
                    module,
                    &searcher,
                    episode_seed(self.base_seed, index as u64),
                )
            })
            .collect();
        self.run_jobs(env_template, policy, &jobs)
    }

    /// Runs an arbitrary list of [`SearchJob`]s — possibly every one with a
    /// different searcher, module and seed — over the worker threads,
    /// returning outcomes in job order plus the batch-wide shared-cache
    /// accounting. The determinism contract of [`SearchDriver::run`] holds
    /// per job: outcomes are bit-for-bit identical for any worker count
    /// (only cache hit/miss *counts* shift with table warmth).
    pub fn run_jobs<P: PolicyModel>(
        &self,
        env_template: &OptimizationEnv,
        policy: &P,
        jobs: &[SearchJob<P>],
    ) -> BatchSearchReport {
        let start = Instant::now();
        let mut master = env_template.clone();
        let shared = master.enable_shared_cache();
        let hits_before = shared.hits();
        let misses_before = shared.misses();

        let n = jobs.len();
        let workers = self.workers.min(n.max(1));
        let mut slots: Vec<Option<SearchOutcome>> = (0..n).map(|_| None).collect();

        if workers <= 1 {
            let mut policy = policy.clone();
            for (job, slot) in jobs.iter().zip(slots.iter_mut()) {
                *slot = Some(job.run(&mut master, &mut policy));
            }
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for worker in 0..workers {
                    let mut worker_env = master.clone();
                    let mut worker_policy = policy.clone();
                    handles.push(scope.spawn(move || {
                        let mut collected = Vec::new();
                        let mut index = worker;
                        while index < n {
                            collected.push((
                                index,
                                jobs[index].run(&mut worker_env, &mut worker_policy),
                            ));
                            index += workers;
                        }
                        collected
                    }));
                }
                for handle in handles {
                    for (index, outcome) in handle.join().expect("search worker panicked") {
                        slots[index] = Some(outcome);
                    }
                }
            });
        }

        BatchSearchReport {
            outcomes: slots
                .into_iter()
                .map(|o| o.expect("every job was assigned to a worker"))
                .collect(),
            shared_cache_hits: shared.hits() - hits_before,
            shared_cache_misses: shared.misses() - misses_before,
            wall_s: start.elapsed().as_secs_f64(),
        }
    }

    /// Optimizes every module of the batch with a [`Portfolio`]: each
    /// module's search runs the whole roster (round-robin or racing) and
    /// all modules — and all members of every module's roster — share one
    /// evaluation cache, so warmth crosses both member and module
    /// boundaries. Outcomes carry per-member attribution; aggregate it
    /// across the batch with [`BatchSearchReport::member_attribution`].
    /// Like [`SearchDriver::run`], results are bit-for-bit identical for
    /// any worker count (racing portfolios stay deterministic by
    /// construction — see [`Portfolio`]).
    pub fn run_portfolio<P>(
        &self,
        env_template: &OptimizationEnv,
        policy: &P,
        portfolio: &Portfolio<P>,
        modules: &[Module],
    ) -> BatchSearchReport
    where
        P: PolicyModel,
    {
        self.run(env_template, policy, portfolio, modules)
    }
}

impl Default for SearchDriver {
    fn default() -> Self {
        Self::new(1)
    }
}

/// The result of one batch search.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSearchReport {
    /// Per-module outcomes, in the order the modules were given.
    pub outcomes: Vec<SearchOutcome>,
    /// Lookups served by the shared table across the whole batch.
    pub shared_cache_hits: u64,
    /// Lookups that ran the estimator across the whole batch.
    pub shared_cache_misses: u64,
    /// Wall-clock time of the batch, seconds.
    pub wall_s: f64,
}

impl BatchSearchReport {
    /// Batch-wide fraction of lookups served by the shared cache.
    pub fn shared_cache_hit_rate(&self) -> f64 {
        let total = self.shared_cache_hits + self.shared_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.shared_cache_hits as f64 / total as f64
        }
    }

    /// Geometric mean of the per-module speedups (1.0 for an empty batch).
    pub fn geomean_speedup(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 1.0;
        }
        (self
            .outcomes
            .iter()
            .map(|o| o.speedup.max(1e-12).ln())
            .sum::<f64>()
            / self.outcomes.len() as f64)
            .exp()
    }

    /// Total estimator runs across the batch (the evaluation budget spent).
    pub fn total_evaluations(&self) -> usize {
        self.outcomes.iter().map(|o| o.evaluations).sum()
    }

    /// Total environment steps across every branch of every search.
    pub fn total_nodes_expanded(&self) -> usize {
        self.outcomes.iter().map(|o| o.nodes_expanded).sum()
    }

    /// Aggregates the per-member attribution of a portfolio batch: one row
    /// per roster rank, in rank order, summed over every module's outcome.
    /// Empty for non-portfolio batches (no outcome carries member rows).
    pub fn member_attribution(&self) -> Vec<MemberAggregate> {
        let mut rows: Vec<MemberAggregate> = Vec::new();
        for outcome in &self.outcomes {
            for member in &outcome.members {
                if rows.len() <= member.rank {
                    rows.resize_with(member.rank + 1, || MemberAggregate {
                        member: member.member.clone(),
                        rank: member.rank,
                        ..MemberAggregate::default()
                    });
                }
                let row = &mut rows[member.rank];
                row.member = member.member.clone();
                row.rank = member.rank;
                if member.winner {
                    row.wins += 1;
                }
                if member.reached_target {
                    row.reached_target += 1;
                }
                if member.status == MemberStatus::Stopped {
                    row.stopped += 1;
                }
                if member.status == MemberStatus::Skipped {
                    row.skipped += 1;
                }
                row.evaluations += member.evaluations;
                row.cache_hits += member.cache_hits;
                row.nodes_expanded += member.nodes_expanded;
            }
        }
        rows
    }
}

/// One roster member's totals across a whole portfolio batch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MemberAggregate {
    /// Display name of the member searcher.
    pub member: String,
    /// Roster rank.
    pub rank: usize,
    /// Modules on which this member's schedule was the portfolio's best.
    pub wins: usize,
    /// Modules on which this member reached the racing target.
    pub reached_target: usize,
    /// Modules on which a lower-ranked racing winner preempted this member.
    pub stopped: usize,
    /// Modules on which the budget ledger skipped this member entirely.
    pub skipped: usize,
    /// Estimator runs attributed to this member across the batch.
    pub evaluations: usize,
    /// Shared-cache hits attributed to this member across the batch.
    pub cache_hits: usize,
    /// Environment steps attributed to this member across the batch.
    pub nodes_expanded: usize,
}

impl MemberAggregate {
    /// Total cost-model lookups attributed to this member.
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }
}
