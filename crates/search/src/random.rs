//! Budgeted uniform-random search — the policy-free baseline.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use mlir_rl_agent::PolicyModel;
use mlir_rl_env::{
    Action, EnvConfig, InterchangeMode, InterchangeSpec, Observation, OptimizationEnv,
};
use mlir_rl_ir::Module;
use mlir_rl_obs::EventKind;
use mlir_rl_transforms::TransformationKind;

use crate::searcher::{
    finish_outcome, max_episode_steps, reseed_for_search, BestFound, LookupMeter, SearchOutcome,
    Searcher, StopToken,
};

/// Uniform-random search over the *masked* action space: `episodes` full
/// episodes of random legal actions, keeping the fastest final schedule.
/// The floor is the untransformed baseline (speedup ≥ 1), and the point of
/// the searcher is to quantify how much of the other searchers' gains come
/// from the policy rather than from raw evaluation budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSearch {
    /// Number of random episodes to roll out.
    pub episodes: usize,
}

impl RandomSearch {
    /// Creates a random search with the given episode budget (at least 1).
    pub fn new(episodes: usize) -> Self {
        Self {
            episodes: episodes.max(1),
        }
    }
}

impl Default for RandomSearch {
    fn default() -> Self {
        Self::new(32)
    }
}

/// Samples a uniform-random action among those the mask allows.
pub fn random_action(obs: &Observation, config: &EnvConfig, rng: &mut ChaCha8Rng) -> Action {
    let allowed: Vec<usize> = (0..6).filter(|i| obs.mask.transformation[*i]).collect();
    let kind = if allowed.is_empty() {
        TransformationKind::NoTransformation
    } else {
        TransformationKind::from_index(allowed[rng.gen_range(0..allowed.len())])
    };
    let m = config.num_tile_candidates();
    let random_tiles = |rng: &mut ChaCha8Rng| -> Vec<usize> {
        (0..obs.num_loops)
            .map(|level| {
                let level_allowed: Vec<usize> = match obs.mask.tile_sizes.get(level) {
                    Some(mask) => (0..mask.len()).filter(|i| mask[*i]).collect(),
                    None => (0..m).collect(),
                };
                if level_allowed.is_empty() {
                    0
                } else {
                    level_allowed[rng.gen_range(0..level_allowed.len())]
                }
            })
            .collect()
    };
    match kind {
        TransformationKind::Tiling => Action::Tiling {
            tile_indices: random_tiles(rng),
        },
        TransformationKind::TiledParallelization => Action::TiledParallelization {
            tile_indices: random_tiles(rng),
        },
        TransformationKind::TiledFusion => Action::TiledFusion {
            tile_indices: random_tiles(rng),
        },
        TransformationKind::Interchange => match config.interchange_mode {
            InterchangeMode::EnumeratedCandidates => {
                let candidates: Vec<usize> = (0..obs.mask.interchange_candidates.len())
                    .filter(|i| obs.mask.interchange_candidates[*i])
                    .collect();
                if candidates.is_empty() {
                    Action::NoTransformation
                } else {
                    Action::Interchange(InterchangeSpec::Candidate(
                        candidates[rng.gen_range(0..candidates.len())],
                    ))
                }
            }
            InterchangeMode::LevelPointers => {
                let mut permutation: Vec<usize> = (0..obs.num_loops).collect();
                permutation.shuffle(rng);
                Action::Interchange(InterchangeSpec::Permutation(permutation))
            }
        },
        TransformationKind::Vectorization => Action::Vectorization,
        TransformationKind::NoTransformation => Action::NoTransformation,
    }
}

impl<P: PolicyModel> Searcher<P> for RandomSearch {
    fn name(&self) -> String {
        format!("random-{}", self.episodes)
    }

    fn search(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome {
        self.run(env, policy, module, seed, 0, &StopToken::new())
    }

    fn search_with_stop(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        self.run(env, policy, module, seed, rank, stop)
    }
}

impl RandomSearch {
    /// The search body. `stop` is checked between episodes: a claim by a
    /// lower rank ends the search with the best schedule found so far; a
    /// fresh token never fires. The first episode always runs (it scores
    /// the baseline the outcome is reported against).
    fn run<P: PolicyModel>(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        let _ = policy; // policy-free baseline
        let meter = LookupMeter::start(env);
        reseed_for_search(env, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut nodes = 0usize;
        let max_steps = max_episode_steps(env, module);
        let config = env.config().clone();

        let probe = env.probe().clone();
        let mut baseline_s = 0.0;
        let mut best_s = f64::INFINITY;
        let mut best_actions: Vec<Action> = Vec::new();
        for episode in 0..self.episodes {
            if episode > 0 && stop.stops(rank) {
                break;
            }
            probe.emit(EventKind::RandomEpisode, None, [episode as u64, 0, 0]);
            let mut obs = env.reset(module.clone());
            if episode == 0 {
                // The noise-free estimate of the do-nothing schedule is the
                // baseline and the floor of the best-so-far.
                baseline_s = env.peek_time_s();
                best_s = baseline_s;
            }
            let mut actions = Vec::new();
            while let Some(current) = obs {
                let action = random_action(&current, &config, &mut rng);
                let outcome = env.step(&action);
                actions.push(action);
                nodes += 1;
                obs = outcome.observation;
                if actions.len() > max_steps {
                    break;
                }
            }
            let final_s = env.peek_time_s();
            if final_s < best_s {
                best_s = final_s;
                best_actions = actions;
            }
        }

        finish_outcome(
            Searcher::<P>::name(self),
            env,
            module,
            &meter,
            baseline_s,
            BestFound {
                time_s: best_s,
                actions: best_actions,
            },
            nodes,
        )
    }
}
