//! Monte-Carlo tree search with policy priors (PUCT) and cost-model
//! playouts.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use mlir_rl_agent::PolicyModel;
use mlir_rl_env::{Action, EpisodeSnapshot, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_obs::EventKind;

use crate::searcher::{
    finish_outcome, max_episode_steps, reseed_for_search, BestFound, LookupMeter, SearchOutcome,
    Searcher, StopToken,
};

/// UCT over the schedule tree, AlphaZero-style: expansion is guided by
/// policy priors (softmax over the ranked candidates' log-probabilities),
/// leaf evaluation is a policy-sampled playout to the end of the episode
/// scored by the cost model, and values are log-speedups over the baseline.
/// Every complete playout is a candidate best schedule, so the reported
/// outcome is the best terminal state seen anywhere in the search.
///
/// Fully deterministic under a fixed seed: one RNG drives candidate
/// ranking and playouts, selection ties break toward the lower edge index,
/// and cost-model values are deterministic whether they hit or miss the
/// cache — so the outcome is independent of how many driver threads run
/// around it (property-tested). Because that RNG advances only inside the
/// policy calls this searcher issues (ranking and playout sampling, in
/// program order), the service's cross-request inference aggregator
/// (`mlir_rl_agent::aggregator`) can batch those calls across requests
/// without perturbing the search: each submitted group carries its own
/// RNG, which comes back advanced exactly as a direct call would leave it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mcts {
    /// Number of selection/expansion/playout iterations.
    pub iterations: usize,
    /// Candidate actions ranked per expanded node (the branching factor).
    pub branch: usize,
    /// PUCT exploration constant `c`.
    pub exploration: f64,
    /// Exploration tuning knobs (AlphaZero-style root noise and value
    /// normalization). The defaults disable both, preserving the
    /// historical seeded-deterministic behavior bit for bit.
    pub tuning: MctsConfig,
}

/// Tuning knobs for [`Mcts`] beyond the core PUCT parameters.
///
/// Both knobs default to **off**, and when off the searcher consumes the
/// RNG and evaluates the tree exactly as it did before they existed — the
/// default-configured outcome is bitwise unchanged (tested).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MctsConfig {
    /// Weight of the Dirichlet noise mixed into the **root** priors:
    /// `prior' = (1 - eps) * prior + eps * noise`. `0.0` disables the
    /// noise entirely (no RNG is consumed).
    pub dirichlet_epsilon: f64,
    /// Concentration of the root Dirichlet noise (AlphaZero uses values
    /// around `0.3` for chess-sized branching factors).
    pub dirichlet_alpha: f64,
    /// Min-max normalization of the exploitation term: `Q` values are
    /// rescaled to `[0, 1]` over the range seen so far before being
    /// compared against the exploration bonus, so the PUCT constant keeps
    /// working when log-speedup magnitudes vary wildly across modules.
    pub value_normalization: bool,
    /// Progressive-widening coefficient `c`: a node with `v` visits may
    /// select among its first `⌈c·v^alpha⌉` prior-ranked edges (clamped to
    /// `[1, branch]`), so the effective branching factor *grows with visit
    /// count* instead of being fixed — small budgets concentrate on the
    /// policy's top candidates, large budgets widen out. `0.0` disables
    /// widening (every ranked edge is always selectable), preserving the
    /// historical behavior bit for bit.
    pub widening_c: f64,
    /// Progressive-widening exponent `alpha` (ignored while `widening_c`
    /// is `0.0`).
    pub widening_alpha: f64,
}

impl Default for MctsConfig {
    fn default() -> Self {
        Self {
            dirichlet_epsilon: 0.0,
            dirichlet_alpha: 0.3,
            value_normalization: false,
            widening_c: 0.0,
            widening_alpha: 0.5,
        }
    }
}

impl MctsConfig {
    /// Number of selectable children under the progressive-widening
    /// schedule `⌈c·visits^alpha⌉` for a node with `visits` visits, before
    /// clamping to the ranked branch width. At least 1 (a node must always
    /// have one selectable edge), and monotone non-decreasing in `visits`
    /// (unit-tested).
    pub fn widened_children(c: f64, alpha: f64, visits: f64) -> usize {
        let allowed = (c * visits.max(0.0).powf(alpha.max(0.0))).ceil();
        if allowed.is_finite() && allowed >= 1.0 {
            allowed as usize
        } else {
            1
        }
    }
}

impl Mcts {
    /// Creates an MCTS searcher with the given iteration budget, branching
    /// factor 4, exploration constant 1.4 and all tuning knobs off.
    pub fn new(iterations: usize) -> Self {
        Self {
            iterations: iterations.max(1),
            branch: 4,
            exploration: 1.4,
            tuning: MctsConfig::default(),
        }
    }

    /// Sets the branching factor (candidates ranked per node).
    pub fn with_branch(mut self, branch: usize) -> Self {
        self.branch = branch.max(1);
        self
    }

    /// Enables Dirichlet root noise with the given mixing weight and
    /// concentration (deterministic in the search seed).
    pub fn with_root_noise(mut self, epsilon: f64, alpha: f64) -> Self {
        self.tuning.dirichlet_epsilon = epsilon.clamp(0.0, 1.0);
        self.tuning.dirichlet_alpha = alpha.max(1e-6);
        self
    }

    /// Enables min-max normalization of the exploitation term.
    pub fn with_value_normalization(mut self) -> Self {
        self.tuning.value_normalization = true;
        self
    }

    /// Enables progressive widening: a node with `v` visits selects among
    /// its first `⌈c·v^alpha⌉` prior-ranked edges (clamped to the branch
    /// width). Pass `c = 0.0` to disable again.
    pub fn with_progressive_widening(mut self, c: f64, alpha: f64) -> Self {
        self.tuning.widening_c = c.max(0.0);
        self.tuning.widening_alpha = alpha.max(0.0);
        self
    }
}

/// Samples `Gamma(alpha, 1)` via Marsaglia–Tsang (with the standard
/// `alpha < 1` boost), driven by uniform draws from the search RNG so the
/// noise is deterministic in the seed.
fn sample_gamma(alpha: f64, rng: &mut ChaCha8Rng) -> f64 {
    if alpha < 1.0 {
        let boost = rng.gen_range(f64::EPSILON..1.0f64).powf(1.0 / alpha);
        return sample_gamma(alpha + 1.0, rng) * boost;
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (3.0 * d.sqrt());
    loop {
        // Standard normal via Box–Muller.
        let u1 = rng.gen_range(f64::EPSILON..1.0f64);
        let u2 = rng.gen_range(0.0..1.0f64);
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.gen_range(f64::EPSILON..1.0f64);
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// A Dirichlet(`alpha`, ..., `alpha`) draw of dimension `n`.
fn sample_dirichlet(alpha: f64, n: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
    let gammas: Vec<f64> = (0..n).map(|_| sample_gamma(alpha, rng)).collect();
    let total: f64 = gammas.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / n.max(1) as f64; n];
    }
    gammas.into_iter().map(|g| g / total).collect()
}

impl Default for Mcts {
    fn default() -> Self {
        Self::new(64)
    }
}

struct Edge {
    action: Action,
    prior: f64,
    child: Option<usize>,
}

struct Node {
    snapshot: EpisodeSnapshot,
    actions: Vec<Action>,
    done: bool,
    expanded: bool,
    edges: Vec<Edge>,
    visits: f64,
    value_sum: f64,
}

impl Node {
    fn mean_value(&self) -> f64 {
        if self.visits > 0.0 {
            self.value_sum / self.visits
        } else {
            0.0
        }
    }
}

impl<P: PolicyModel> Searcher<P> for Mcts {
    fn name(&self) -> String {
        format!("mcts-{}", self.iterations)
    }

    fn search(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome {
        self.run(env, policy, module, seed, 0, &StopToken::new())
    }

    fn search_with_stop(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        self.run(env, policy, module, seed, rank, stop)
    }
}

impl Mcts {
    /// The search body. `stop` is checked between iterations: a claim by a
    /// lower rank ends the search with its best-so-far (the racing-loser
    /// wind-down); a fresh token never fires, which is the plain
    /// [`Searcher::search`] path.
    fn run<P: PolicyModel>(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        let meter = LookupMeter::start(env);
        reseed_for_search(env, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut nodes_expanded = 0usize;
        let max_steps = max_episode_steps(env, module);

        let mut value_min = f64::INFINITY;
        let mut value_max = f64::NEG_INFINITY;

        let root_obs = env.reset(module.clone());
        // The noise-free estimate of the empty schedule is both the
        // baseline every value is a log-speedup against and the floor of
        // the best-so-far.
        let baseline_s = env.peek_time_s();
        let mut best_s = baseline_s;
        let mut best_actions: Vec<Action> = Vec::new();

        let mut arena = vec![Node {
            snapshot: env.snapshot(),
            actions: Vec::new(),
            done: root_obs.is_none(),
            expanded: false,
            edges: Vec::new(),
            visits: 0.0,
            value_sum: 0.0,
        }];

        let probe = env.probe().clone();
        for iteration in 0..self.iterations {
            if arena[0].done || stop.stops(rank) {
                break;
            }
            probe.emit(
                EventKind::MctsIteration,
                None,
                [iteration as u64, nodes_expanded as u64, 0],
            );
            // --- Selection (with inline expansion of unvisited edges) ----
            let mut path = vec![0usize];
            let mut node = 0usize;
            loop {
                if arena[node].done {
                    break;
                }
                if !arena[node].expanded {
                    // Rank candidates from the node's observation and turn
                    // their log-probabilities into priors.
                    env.restore(&arena[node].snapshot);
                    let obs = env
                        .current_observation()
                        .expect("live node has an observation");
                    let candidates = policy.rank_actions(&obs, self.branch, &mut rng);
                    let max_lp = candidates
                        .iter()
                        .map(|c| c.log_prob)
                        .fold(f64::NEG_INFINITY, f64::max);
                    let weights: Vec<f64> = candidates
                        .iter()
                        .map(|c| (c.log_prob - max_lp).exp())
                        .collect();
                    let total: f64 = weights.iter().sum();
                    arena[node].edges = candidates
                        .into_iter()
                        .zip(weights)
                        .map(|(record, w)| Edge {
                            action: record.action,
                            prior: w / total.max(1e-12),
                            child: None,
                        })
                        .collect();
                    // Dirichlet root noise (AlphaZero-style): mix a
                    // deterministic-in-seed Dirichlet draw into the root
                    // priors so repeated searches explore beyond the
                    // policy's favorite actions. Off (the default) consumes
                    // no RNG and leaves the priors untouched.
                    let eps = self.tuning.dirichlet_epsilon;
                    if node == 0 && eps > 0.0 && arena[node].edges.len() > 1 {
                        let noise = sample_dirichlet(
                            self.tuning.dirichlet_alpha,
                            arena[node].edges.len(),
                            &mut rng,
                        );
                        for (edge, d) in arena[node].edges.iter_mut().zip(noise) {
                            edge.prior = (1.0 - eps) * edge.prior + eps * d;
                        }
                    }
                    arena[node].expanded = true;
                }
                // PUCT over the edges; ties break toward the lower index.
                // Progressive widening (when enabled) restricts selection
                // to the first ⌈c·visits^alpha⌉ prior-ranked edges, so the
                // branching factor grows with the node's visit count; when
                // disabled every ranked edge is selectable, exactly the
                // historical behavior.
                let selectable = if self.tuning.widening_c > 0.0 {
                    MctsConfig::widened_children(
                        self.tuning.widening_c,
                        self.tuning.widening_alpha,
                        arena[node].visits,
                    )
                    .min(arena[node].edges.len())
                } else {
                    arena[node].edges.len()
                };
                let parent_visits = arena[node].visits.max(1.0);
                let mut chosen = 0usize;
                let mut chosen_score = f64::NEG_INFINITY;
                for (i, edge) in arena[node].edges.iter().take(selectable).enumerate() {
                    let (q, child_visits) = match edge.child {
                        Some(c) => (arena[c].mean_value(), arena[c].visits),
                        None => (0.0, 0.0),
                    };
                    // Min-max value normalization: rescale visited Q values
                    // to [0, 1] over the value range seen so far, so the
                    // exploration constant is comparable across modules
                    // whose log-speedups differ by orders of magnitude.
                    let q = if self.tuning.value_normalization
                        && child_visits > 0.0
                        && value_max > value_min
                    {
                        (q - value_min) / (value_max - value_min)
                    } else {
                        q
                    };
                    let u =
                        self.exploration * edge.prior * parent_visits.sqrt() / (1.0 + child_visits);
                    let score = q + u;
                    if score > chosen_score {
                        chosen_score = score;
                        chosen = i;
                    }
                }
                match arena[node].edges[chosen].child {
                    Some(child) => {
                        node = child;
                        path.push(node);
                    }
                    None => {
                        // Expand the edge into a new child and stop there.
                        env.restore(&arena[node].snapshot);
                        let action = arena[node].edges[chosen].action.clone();
                        let outcome = env.step(&action);
                        nodes_expanded += 1;
                        let mut actions = arena[node].actions.clone();
                        actions.push(action);
                        let child = Node {
                            snapshot: env.snapshot(),
                            actions,
                            done: outcome.done,
                            expanded: false,
                            edges: Vec::new(),
                            visits: 0.0,
                            value_sum: 0.0,
                        };
                        let child_index = arena.len();
                        arena.push(child);
                        arena[node].edges[chosen].child = Some(child_index);
                        path.push(child_index);
                        break;
                    }
                }
            }

            // --- Evaluation: cost-model playout from the path's leaf -----
            let leaf = *path.last().expect("path starts at the root");
            env.restore(&arena[leaf].snapshot);
            let mut playout_actions = arena[leaf].actions.clone();
            let mut obs = env.current_observation();
            while let Some(current) = obs {
                let record = policy.select_action(&current, false, &mut rng);
                let outcome = env.step(&record.action);
                playout_actions.push(record.action);
                nodes_expanded += 1;
                obs = outcome.observation;
                if playout_actions.len() > max_steps {
                    break;
                }
            }
            let final_s = env.peek_time_s();
            if final_s < best_s {
                best_s = final_s;
                best_actions = playout_actions;
            }
            let value = if final_s > 0.0 {
                (baseline_s / final_s).max(1e-12).ln()
            } else {
                0.0
            };

            // --- Backpropagation ----------------------------------------
            value_min = value_min.min(value);
            value_max = value_max.max(value);
            for &n in &path {
                arena[n].visits += 1.0;
                arena[n].value_sum += value;
            }
        }

        finish_outcome(
            Searcher::<P>::name(self),
            env,
            module,
            &meter,
            baseline_s,
            BestFound {
                time_s: best_s,
                actions: best_actions,
            },
            nodes_expanded,
        )
    }
}
