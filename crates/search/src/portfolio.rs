//! Portfolio search: a roster of searchers on one shared evaluation cache.
//!
//! No single searcher dominates the schedule space at every budget — beam
//! search wins small budgets, MCTS catches up as its tree deepens, random
//! search calibrates how much the policy is worth. A [`Portfolio`] runs a
//! configurable roster of member searchers over the *same* module against
//! one [`mlir_rl_costmodel::SharedEvalCache`] and reports the best schedule
//! any member found, with per-member attribution. Because every member
//! scores schedules through the same table, the members warm each other up:
//! the portfolio reaches the best-of-members schedule for *less* total
//! estimator spend than running the members independently.
//!
//! Two execution modes:
//!
//! * **Round-robin** ([`PortfolioMode::RoundRobin`]): members run one after
//!   another on the caller's environment handle, each charged against a
//!   common [`EvalBudget`] ledger; once the ledger is exhausted the
//!   remaining members are skipped. Fully serial and bitwise deterministic —
//!   a single-member round-robin portfolio is outcome-identical to running
//!   that member alone (property-tested).
//! * **Racing** ([`PortfolioMode::Racing`]): members run concurrently on
//!   cloned environment handles sharing one cache, and the first member past
//!   the target speedup ends the race. Determinism is preserved by ranking:
//!   a member only honors a stop from a *lower-ranked* claimant, so the
//!   winner — the lowest-ranked member that, run to completion, reaches the
//!   target (or the best finisher when nobody does) — and every member
//!   ranked at or below it always run to completion. The reported outcome
//!   aggregates exactly that deterministic prefix, which is what keeps
//!   racing outcomes bit-identical for any thread timing and any
//!   [`crate::SearchDriver`] worker count (property-tested). Losers ranked
//!   above the winner wind down early; their partial effort appears only in
//!   the member attribution rows.

use mlir_rl_agent::PolicyModel;
use mlir_rl_costmodel::EvalBudget;
use mlir_rl_env::OptimizationEnv;
use mlir_rl_ir::Module;
use mlir_rl_obs::EventKind;

use crate::searcher::{MemberOutcome, MemberStatus, SearchOutcome, Searcher, StopToken};

/// How a [`Portfolio`] executes its roster.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PortfolioMode {
    /// Members run serially on one environment handle, sharing its cache
    /// and a common eval-budget ledger.
    RoundRobin,
    /// Members run concurrently on cloned handles of one shared cache; the
    /// first member (in roster-rank order) whose completed search reaches
    /// `target_speedup` wins and higher-ranked members wind down early.
    Racing {
        /// Speedup that ends the race.
        target_speedup: f64,
    },
}

/// A searcher that runs a roster of member searchers — greedy, beam, MCTS,
/// random, even nested portfolios — and reports the best schedule any of
/// them found, with per-member [`MemberOutcome`] attribution inside the
/// [`SearchOutcome`]. See the module docs for the two execution modes and
/// their determinism story.
pub struct Portfolio<P: PolicyModel> {
    members: Vec<Box<dyn Searcher<P>>>,
    mode: PortfolioMode,
    /// Cap on total cost-model lookups across members (round-robin gate).
    budget: Option<u64>,
}

impl<P: PolicyModel> Portfolio<P> {
    /// An empty portfolio in the given mode; add members with
    /// [`Portfolio::with_member`].
    pub fn new(mode: PortfolioMode) -> Self {
        Self {
            members: Vec::new(),
            mode,
            budget: None,
        }
    }

    /// An empty round-robin portfolio.
    pub fn round_robin() -> Self {
        Self::new(PortfolioMode::RoundRobin)
    }

    /// An empty racing portfolio with the given target speedup.
    pub fn racing(target_speedup: f64) -> Self {
        Self::new(PortfolioMode::Racing { target_speedup })
    }

    /// Adds a member searcher at the next roster rank (rank doubles as the
    /// racing priority: lower ranks preempt higher ones).
    pub fn with_member<S: Searcher<P> + 'static>(mut self, member: S) -> Self {
        self.members.push(Box::new(member));
        self
    }

    /// Adds an already-boxed member searcher.
    pub fn with_boxed_member(mut self, member: Box<dyn Searcher<P>>) -> Self {
        self.members.push(member);
        self
    }

    /// Caps the total cost-model lookups the roster may spend (the common
    /// eval-budget ledger). In round-robin mode the check happens between
    /// member runs — deterministic because completed members' lookup totals
    /// are seed-deterministic — and members whose turn comes after
    /// exhaustion are skipped. Racing mode only accounts against the
    /// ledger (its members start together).
    pub fn with_budget(mut self, total_lookups: u64) -> Self {
        self.budget = Some(total_lookups);
        self
    }

    /// The execution mode.
    pub fn mode(&self) -> PortfolioMode {
        self.mode
    }

    /// Number of roster members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the roster is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Display names of the roster, in rank order.
    pub fn member_names(&self) -> Vec<String> {
        self.members.iter().map(|m| m.name()).collect()
    }

    fn ledger(&self) -> EvalBudget {
        match self.budget {
            Some(cap) => EvalBudget::limited(cap),
            None => EvalBudget::unlimited(),
        }
    }

    /// Degenerate outcome of an empty roster: the untransformed schedule.
    fn empty_outcome(&self, env: &mut OptimizationEnv, module: &Module) -> SearchOutcome {
        let meter = crate::searcher::LookupMeter::start(env);
        let _ = env.reset(module.clone());
        let baseline_s = env.peek_time_s();
        let best_schedule = env
            .scheduled()
            .map(|s| s.states().iter().map(|st| st.schedule.clone()).collect())
            .unwrap_or_default();
        let (evaluations, cache_hits) = meter.finish(env);
        SearchOutcome {
            searcher: Searcher::<P>::name(self),
            module: module.name().to_string(),
            baseline_s,
            best_s: baseline_s,
            speedup: 1.0,
            best_actions: Vec::new(),
            best_schedule,
            nodes_expanded: 0,
            evaluations,
            cache_hits,
            members: Vec::new(),
        }
    }

    fn search_round_robin(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        let ledger = self.ledger();
        let probe = env.probe().clone();
        let mut finished: Vec<(usize, SearchOutcome)> = Vec::new();
        let mut skipped: Vec<usize> = Vec::new();
        for (member_rank, member) in self.members.iter().enumerate() {
            // An external stop (a served request's cancellation or
            // deadline) ends the round-robin at a member boundary; the
            // members that never got a turn report `Skipped`, exactly like
            // budget-skipped members.
            if ledger.is_exhausted() || stop.stops(rank) {
                skipped.push(member_rank);
                continue;
            }
            // Every member gets the portfolio's own seed: members are
            // different algorithms, and sharing the seed is what makes a
            // single-member portfolio identical to running that member
            // alone. Warmth flows member to member through `env`'s cache.
            // The external token is threaded through at the portfolio's own
            // rank so stop-aware members also wind down mid-run.
            probe.emit(
                EventKind::MemberBegin,
                Some(&member.name()),
                [member_rank as u64, 0, 0],
            );
            let outcome = member.search_with_stop(env, policy, module, seed, rank, stop);
            let spent_after = ledger.charge(outcome.total_lookups() as u64);
            probe.emit(
                EventKind::MemberEnd,
                Some(&member.name()),
                [member_rank as u64, 0, 0],
            );
            probe.emit(
                EventKind::BudgetCharge,
                None,
                [outcome.total_lookups() as u64, spent_after, 0],
            );
            finished.push((member_rank, outcome));
        }
        self.assemble(env, module, finished, skipped, None, usize::MAX)
    }

    #[allow(clippy::too_many_arguments)]
    fn search_racing(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        target_speedup: f64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        // Member threads must share one table; idempotent when the driver
        // already put the environment in shared mode.
        env.enable_shared_cache();
        let ledger = self.ledger();
        // The race runs in its own claimant space, linked to the external
        // token: member claims stay internal, while an external cancel or
        // deadline stops every member through the parent link.
        let race = stop.child(rank);

        let mut raced: Vec<(usize, SearchOutcome, bool)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.members.len());
            for (member_rank, member) in self.members.iter().enumerate() {
                let mut member_env = env.clone();
                let mut member_policy = policy.clone();
                let race = &race;
                let ledger = ledger.clone();
                handles.push(scope.spawn(move || {
                    // The cloned environment carries the request's probe, so
                    // racing members trace into the same request lane.
                    let probe = member_env.probe().clone();
                    let name = member.name();
                    probe.emit(
                        EventKind::MemberBegin,
                        Some(&name),
                        [member_rank as u64, 0, 0],
                    );
                    let outcome = member.search_with_stop(
                        &mut member_env,
                        &mut member_policy,
                        module,
                        seed,
                        member_rank,
                        race,
                    );
                    // Only a member that was never preempted may claim:
                    // its outcome is its full search, so "reached the
                    // target" is a deterministic fact about (seed,
                    // module), not about thread timing.
                    let preempted = race.stops(member_rank);
                    if !preempted && outcome.speedup >= target_speedup {
                        race.claim(member_rank);
                    }
                    ledger.charge(outcome.total_lookups() as u64);
                    probe.emit(
                        EventKind::MemberEnd,
                        Some(&name),
                        [member_rank as u64, preempted as u64, 0],
                    );
                    (member_rank, outcome, preempted)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("portfolio member thread panicked"))
                .collect()
        });
        raced.sort_by_key(|(rank, _, _)| *rank);

        // The deterministic prefix: the winner is the lowest-ranked member
        // that (run to completion) reached the target; every member ranked
        // at or below it always completes. Members above the claimant are
        // attribution-only — their stopping point depends on timing.
        let claimant = race.claimant();
        let counted_below = claimant.unwrap_or(usize::MAX);
        let finished: Vec<(usize, SearchOutcome)> = raced
            .iter()
            .filter(|(rank, _, _)| *rank <= counted_below)
            .map(|(rank, outcome, _)| (*rank, outcome.clone()))
            .collect();
        let extras: Vec<MemberOutcome> = raced
            .into_iter()
            .filter(|(rank, _, _)| *rank > counted_below)
            .map(|(rank, outcome, preempted)| {
                member_row(
                    rank,
                    &outcome,
                    target_speedup,
                    false,
                    if preempted {
                        MemberStatus::Stopped
                    } else {
                        MemberStatus::Completed
                    },
                )
            })
            .collect();
        self.assemble_with_extras(
            env,
            module,
            finished,
            extras,
            Some(target_speedup),
            claimant,
        )
    }

    fn assemble(
        &self,
        env: &mut OptimizationEnv,
        module: &Module,
        finished: Vec<(usize, SearchOutcome)>,
        skipped: Vec<usize>,
        target: Option<f64>,
        claimant: usize,
    ) -> SearchOutcome {
        let extras = skipped
            .into_iter()
            .map(|rank| MemberOutcome {
                member: self.members[rank].name(),
                rank,
                speedup: 1.0,
                best_s: 0.0,
                nodes_expanded: 0,
                evaluations: 0,
                cache_hits: 0,
                reached_target: false,
                winner: false,
                status: MemberStatus::Skipped,
            })
            .collect();
        self.assemble_with_extras(
            env,
            module,
            finished,
            extras,
            target,
            (claimant != usize::MAX).then_some(claimant),
        )
    }

    /// Builds the portfolio outcome from the deterministically-counted
    /// member outcomes (`finished`) plus attribution-only rows (`extras`:
    /// racing losers above the winner, budget-skipped members).
    fn assemble_with_extras(
        &self,
        env: &mut OptimizationEnv,
        module: &Module,
        finished: Vec<(usize, SearchOutcome)>,
        extras: Vec<MemberOutcome>,
        target: Option<f64>,
        claimant: Option<usize>,
    ) -> SearchOutcome {
        let Some(winner_rank) = claimant.or_else(|| {
            finished
                .iter()
                .min_by(|(ra, a), (rb, b)| {
                    a.best_s
                        .partial_cmp(&b.best_s)
                        .expect("estimated times are finite")
                        .then(ra.cmp(rb))
                })
                .map(|(rank, _)| *rank)
        }) else {
            // Nothing ran (e.g. a zero budget skipped every member): report
            // the untransformed schedule but keep the attribution rows.
            let mut outcome = self.empty_outcome(env, module);
            outcome.members = extras;
            outcome.members.sort_by_key(|m| m.rank);
            return outcome;
        };

        let mut members: Vec<MemberOutcome> = finished
            .iter()
            .map(|(rank, outcome)| {
                member_row(
                    *rank,
                    outcome,
                    target.unwrap_or(f64::INFINITY),
                    *rank == winner_rank,
                    MemberStatus::Completed,
                )
            })
            .chain(extras)
            .collect();
        members.sort_by_key(|m| m.rank);

        let winner = &finished
            .iter()
            .find(|(rank, _)| *rank == winner_rank)
            .expect("winner rank comes from the finished set")
            .1;
        env.probe().emit(
            EventKind::MemberWin,
            Some(&winner.searcher),
            [winner_rank as u64, 0, 0],
        );
        SearchOutcome {
            searcher: Searcher::<P>::name(self),
            module: winner.module.clone(),
            baseline_s: winner.baseline_s,
            best_s: winner.best_s,
            speedup: winner.speedup,
            best_actions: winner.best_actions.clone(),
            best_schedule: winner.best_schedule.clone(),
            nodes_expanded: finished.iter().map(|(_, o)| o.nodes_expanded).sum(),
            evaluations: finished.iter().map(|(_, o)| o.evaluations).sum(),
            cache_hits: finished.iter().map(|(_, o)| o.cache_hits).sum(),
            members,
        }
    }
}

fn member_row(
    rank: usize,
    outcome: &SearchOutcome,
    target_speedup: f64,
    winner: bool,
    status: MemberStatus,
) -> MemberOutcome {
    MemberOutcome {
        member: outcome.searcher.clone(),
        rank,
        speedup: outcome.speedup,
        best_s: outcome.best_s,
        nodes_expanded: outcome.nodes_expanded,
        evaluations: outcome.evaluations,
        cache_hits: outcome.cache_hits,
        reached_target: outcome.speedup >= target_speedup,
        winner,
        status,
    }
}

impl<P: PolicyModel> std::fmt::Debug for Portfolio<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Portfolio")
            .field("members", &self.member_names())
            .field("mode", &self.mode)
            .field("budget", &self.budget)
            .finish()
    }
}

impl<P: PolicyModel> Searcher<P> for Portfolio<P> {
    fn name(&self) -> String {
        match self.mode {
            PortfolioMode::RoundRobin => format!("portfolio-rr-{}", self.members.len()),
            PortfolioMode::Racing { .. } => format!("portfolio-race-{}", self.members.len()),
        }
    }

    fn search(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome {
        if self.members.is_empty() {
            return self.empty_outcome(env, module);
        }
        // A standalone search runs under a token that never fires, so the
        // stop-threaded paths behave exactly like unstoppable ones.
        self.search_with_stop(env, policy, module, seed, 0, &StopToken::new())
    }

    fn search_with_stop(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        if self.members.is_empty() {
            return self.empty_outcome(env, module);
        }
        match self.mode {
            PortfolioMode::RoundRobin => {
                self.search_round_robin(env, policy, module, seed, rank, stop)
            }
            PortfolioMode::Racing { target_speedup } => {
                self.search_racing(env, policy, module, seed, target_speedup, rank, stop)
            }
        }
    }
}
