//! The common search interface and its outcome type.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use mlir_rl_agent::PolicyModel;
use mlir_rl_env::{Action, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_transforms::Schedule;

/// The result of searching the schedule space of one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Name of the searcher that produced this outcome.
    pub searcher: String,
    /// Name of the optimized module.
    pub module: String,
    /// Baseline (untransformed) execution-time estimate, seconds. Like
    /// `best_s`, this is the noise-free cost-model quantity — search scores
    /// schedules analytically; the measurement-noise protocol belongs to
    /// the training environment's episode stats.
    pub baseline_s: f64,
    /// Best execution-time estimate found, seconds (noise-free).
    pub best_s: f64,
    /// Speedup of the best schedule over the baseline.
    pub speedup: f64,
    /// The environment action sequence that reproduces the best schedule.
    pub best_actions: Vec<Action>,
    /// The best per-operation transformation lists (indexed by operation
    /// id), as materialized by replaying `best_actions`.
    pub best_schedule: Vec<Schedule>,
    /// Environment steps taken across every branch of the search.
    pub nodes_expanded: usize,
    /// Cost-model evaluations actually performed (cache misses) during the
    /// search.
    pub evaluations: usize,
    /// Evaluation requests served by the schedule-keyed cache.
    pub cache_hits: usize,
    /// Per-member attribution when this outcome came from a
    /// [`crate::Portfolio`] search (empty for plain searchers). Racing
    /// losers that were preempted report their effort up to the stop, so
    /// member rows are display/accounting data, not part of the outcome's
    /// determinism contract.
    pub members: Vec<MemberOutcome>,
}

impl SearchOutcome {
    /// Total cost-model lookups of the search
    /// (`evaluations + cache_hits`; the same invariant as
    /// [`mlir_rl_env::EpisodeStats::total_lookups`]).
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }

    /// Fraction of lookups served by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.total_lookups();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// How one member of a portfolio search finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberStatus {
    /// The member ran its full search.
    Completed,
    /// A lower-ranked racing member claimed the target first; this member
    /// wound down early and its numbers cover only the work up to the stop.
    Stopped,
    /// The portfolio's eval-budget ledger was exhausted before this member's
    /// turn (round-robin mode); it never ran.
    Skipped,
}

/// One portfolio member's contribution to a [`SearchOutcome`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemberOutcome {
    /// Display name of the member searcher.
    pub member: String,
    /// Roster index (the racing priority: lower ranks preempt higher ones).
    pub rank: usize,
    /// Best speedup this member found (1.0 for a skipped member).
    pub speedup: f64,
    /// Best execution-time estimate this member found, seconds.
    pub best_s: f64,
    /// Environment steps this member took.
    pub nodes_expanded: usize,
    /// Estimator runs this member's lookups caused.
    pub evaluations: usize,
    /// Lookups the shared cache served for this member.
    pub cache_hits: usize,
    /// Whether this member reached the racing target speedup.
    pub reached_target: bool,
    /// Whether this member's schedule is the portfolio's reported best.
    pub winner: bool,
    /// How the member finished.
    pub status: MemberStatus,
}

impl MemberOutcome {
    /// Total cost-model lookups of the member
    /// (`evaluations + cache_hits`).
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }
}

/// Cooperative early-stop channel of a racing portfolio — and, since the
/// serving layer reuses it, of any deadline- or cancellation-aware search.
///
/// The token holds the roster rank of the best (lowest-ranked) member that
/// has claimed the race target so far. A member checks
/// [`StopToken::stops`] at its iteration boundaries and winds down **only
/// when the claimant outranks it** — so every member ranked at or below the
/// eventual winner always runs to completion, which is what keeps racing
/// outcomes deterministic: the winner and everything it reports never
/// depend on thread timing, only losers *above* the winner get cut short.
///
/// Two optional extensions serve the request/response layer:
///
/// * a **deadline** ([`StopToken::with_deadline`]): once the wall-clock
///   deadline passes, [`StopToken::stops`] fires for *every* rank — the
///   in-run half of end-to-end deadline enforcement. Deadline stops are
///   timing-based, so (like racing-loser rows) anything cut short by one
///   is outside the determinism contract;
/// * a **parent link** ([`StopToken::child`]): a child token opens a fresh
///   claimant space (for e.g. a portfolio's internal race) that *also*
///   honors stops addressed to the parent rank it was created under — how
///   an external cancel or deadline reaches into a nested search's members.
#[derive(Debug, Clone)]
pub struct StopToken {
    claimant: Arc<AtomicUsize>,
    deadline: Option<Instant>,
    parent: Option<(Arc<StopToken>, usize)>,
}

impl StopToken {
    /// A token with no claimant, no deadline and no parent: it never stops
    /// anyone until [`StopToken::claim`] is called.
    pub fn new() -> Self {
        Self {
            claimant: Arc::new(AtomicUsize::new(usize::MAX)),
            deadline: None,
            parent: None,
        }
    }

    /// Attaches a wall-clock deadline: from `deadline` on,
    /// [`StopToken::stops`] fires for every rank.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The attached deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// True once the attached deadline has passed (never for a token
    /// without one).
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// A token with a fresh claimant space that additionally stops every
    /// rank whenever `self` stops `rank` — claims on the child never
    /// propagate to `self`. Nested searches (a portfolio race inside a
    /// served request) hand their members a child of the request token so
    /// an external cancel or deadline cuts through both layers.
    pub fn child(&self, rank: usize) -> Self {
        Self {
            claimant: Arc::new(AtomicUsize::new(usize::MAX)),
            deadline: None,
            parent: Some((Arc::new(self.clone()), rank)),
        }
    }

    /// Records that the member at `rank` reached the target. The lowest
    /// claiming rank wins ties between concurrent claims.
    pub fn claim(&self, rank: usize) {
        self.claimant.fetch_min(rank, Ordering::SeqCst);
    }

    /// The best (lowest) rank that has claimed *this* token so far
    /// (deadline expiry and parent stops are not claims).
    pub fn claimant(&self) -> Option<usize> {
        let rank = self.claimant.load(Ordering::SeqCst);
        (rank != usize::MAX).then_some(rank)
    }

    /// True when the member at `rank` should wind down with its
    /// best-so-far: a member ranked below it has claimed, the deadline has
    /// passed, or the parent token stops the rank this child was created
    /// under.
    pub fn stops(&self, rank: usize) -> bool {
        self.claimant.load(Ordering::SeqCst) < rank
            || self.expired()
            || self
                .parent
                .as_ref()
                .is_some_and(|(parent, parent_rank)| parent.stops(*parent_rank))
    }
}

impl Default for StopToken {
    fn default() -> Self {
        Self::new()
    }
}

/// A schedule-search procedure over the RL environment.
///
/// Implementations must be deterministic in `seed`: the same environment
/// configuration, policy, module and seed produce the same outcome (up to
/// cache hit/miss counts, which depend on what was already memoized). The
/// environment is handed in hot — its evaluation cache persists across
/// calls, which is what makes repeated searches (and batch searches through
/// [`crate::SearchDriver`]) cheap.
pub trait Searcher<P: PolicyModel>: Send + Sync {
    /// Display name of the searcher (used in tables and reports).
    fn name(&self) -> String;

    /// Searches the schedule space of `module` and returns the best
    /// schedule found.
    fn search(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome;

    /// Like [`Searcher::search`], but cooperatively interruptible: the
    /// search runs as member `rank` of a racing portfolio and should check
    /// `stop.stops(rank)` at its iteration boundaries, finishing early with
    /// its best-so-far when a lower-ranked member has claimed the race
    /// target. The default ignores the token and runs the full search —
    /// correct for atomic searchers (greedy decoding, the baseline
    /// adapters) whose one episode cannot meaningfully be cut short.
    fn search_with_stop(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        let _ = (rank, stop);
        self.search(env, policy, module, seed)
    }
}

/// A reference to a searcher searches like the searcher itself — lets
/// unsized searchers (`&dyn Searcher<P>`) be handed to APIs that need a
/// sized implementor, e.g. [`crate::SearchJob`] construction.
impl<P: PolicyModel, S: Searcher<P> + ?Sized> Searcher<P> for &S {
    fn name(&self) -> String {
        (**self).name()
    }

    fn search(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome {
        (**self).search(env, policy, module, seed)
    }

    fn search_with_stop(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
        rank: usize,
        stop: &StopToken,
    ) -> SearchOutcome {
        (**self).search_with_stop(env, policy, module, seed, rank, stop)
    }
}

/// Upper bound on episode length (guards against malformed modules), the
/// same bound the rollout engine uses.
pub(crate) fn max_episode_steps(env: &OptimizationEnv, module: &Module) -> usize {
    (module.ops().len() + 1) * (env.config().max_schedule_len + 3)
}

/// Puts the environment's measurement-noise stream (when configured) in a
/// canonical per-search state derived from the search seed, the same way
/// the rollout engine reseeds per episode — so a search is deterministic in
/// its seed regardless of what ran on this environment before, and the
/// driver's outcomes stay worker-count invariant under noise.
pub(crate) fn reseed_for_search(env: &mut OptimizationEnv, seed: u64) {
    if let Some(noise_seed) = env.config().noise_seed {
        env.reseed_noise(mlir_rl_agent::episode_seed(noise_seed, seed));
    }
}

/// Snapshot of an environment's cache counters, to attribute a delta of
/// lookups to one search (the counters survive `env.reset`, which zeroes
/// only the per-episode accounting).
pub(crate) struct LookupMeter {
    hits: u64,
    misses: u64,
}

impl LookupMeter {
    pub(crate) fn start(env: &OptimizationEnv) -> Self {
        Self {
            hits: env.cache().hits(),
            misses: env.cache().misses(),
        }
    }

    /// `(evaluations, cache_hits)` observed since `start`.
    pub(crate) fn finish(&self, env: &OptimizationEnv) -> (usize, usize) {
        (
            (env.cache().misses() - self.misses) as usize,
            (env.cache().hits() - self.hits) as usize,
        )
    }
}

/// Replays an action sequence on a fresh episode and returns the resulting
/// per-operation schedules (the materialized best schedule).
pub(crate) fn materialize_schedule(
    env: &mut OptimizationEnv,
    module: &Module,
    actions: &[Action],
) -> Vec<Schedule> {
    env.reset(module.clone());
    for action in actions {
        env.step(action);
    }
    env.scheduled()
        .map(|s| s.states().iter().map(|st| st.schedule.clone()).collect())
        .unwrap_or_default()
}

/// The best terminal state a search has found so far: its estimated time
/// and the action sequence that reproduces it.
pub(crate) struct BestFound {
    pub(crate) time_s: f64,
    pub(crate) actions: Vec<Action>,
}

/// Assembles a [`SearchOutcome`] from a finished search: materializes the
/// best schedule by replay and reads the lookup meter.
pub(crate) fn finish_outcome(
    name: String,
    env: &mut OptimizationEnv,
    module: &Module,
    meter: &LookupMeter,
    baseline_s: f64,
    best: BestFound,
    nodes_expanded: usize,
) -> SearchOutcome {
    let best_schedule = materialize_schedule(env, module, &best.actions);
    let (evaluations, cache_hits) = meter.finish(env);
    SearchOutcome {
        searcher: name,
        module: module.name().to_string(),
        baseline_s,
        best_s: best.time_s,
        speedup: if best.time_s > 0.0 {
            baseline_s / best.time_s
        } else {
            1.0
        },
        best_actions: best.actions,
        best_schedule,
        nodes_expanded,
        evaluations,
        cache_hits,
        members: Vec::new(),
    }
}
