//! The common search interface and its outcome type.

use serde::{Deserialize, Serialize};

use mlir_rl_agent::PolicyModel;
use mlir_rl_env::{Action, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_transforms::Schedule;

/// The result of searching the schedule space of one module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Name of the searcher that produced this outcome.
    pub searcher: String,
    /// Name of the optimized module.
    pub module: String,
    /// Baseline (untransformed) execution-time estimate, seconds. Like
    /// `best_s`, this is the noise-free cost-model quantity — search scores
    /// schedules analytically; the measurement-noise protocol belongs to
    /// the training environment's episode stats.
    pub baseline_s: f64,
    /// Best execution-time estimate found, seconds (noise-free).
    pub best_s: f64,
    /// Speedup of the best schedule over the baseline.
    pub speedup: f64,
    /// The environment action sequence that reproduces the best schedule.
    pub best_actions: Vec<Action>,
    /// The best per-operation transformation lists (indexed by operation
    /// id), as materialized by replaying `best_actions`.
    pub best_schedule: Vec<Schedule>,
    /// Environment steps taken across every branch of the search.
    pub nodes_expanded: usize,
    /// Cost-model evaluations actually performed (cache misses) during the
    /// search.
    pub evaluations: usize,
    /// Evaluation requests served by the schedule-keyed cache.
    pub cache_hits: usize,
}

impl SearchOutcome {
    /// Total cost-model lookups of the search
    /// (`evaluations + cache_hits`; the same invariant as
    /// [`mlir_rl_env::EpisodeStats::total_lookups`]).
    pub fn total_lookups(&self) -> usize {
        self.evaluations + self.cache_hits
    }

    /// Fraction of lookups served by the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.total_lookups();
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A schedule-search procedure over the RL environment.
///
/// Implementations must be deterministic in `seed`: the same environment
/// configuration, policy, module and seed produce the same outcome (up to
/// cache hit/miss counts, which depend on what was already memoized). The
/// environment is handed in hot — its evaluation cache persists across
/// calls, which is what makes repeated searches (and batch searches through
/// [`crate::SearchDriver`]) cheap.
pub trait Searcher<P: PolicyModel>: Send + Sync {
    /// Display name of the searcher (used in tables and reports).
    fn name(&self) -> String;

    /// Searches the schedule space of `module` and returns the best
    /// schedule found.
    fn search(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome;
}

/// Upper bound on episode length (guards against malformed modules), the
/// same bound the rollout engine uses.
pub(crate) fn max_episode_steps(env: &OptimizationEnv, module: &Module) -> usize {
    (module.ops().len() + 1) * (env.config().max_schedule_len + 3)
}

/// Puts the environment's measurement-noise stream (when configured) in a
/// canonical per-search state derived from the search seed, the same way
/// the rollout engine reseeds per episode — so a search is deterministic in
/// its seed regardless of what ran on this environment before, and the
/// driver's outcomes stay worker-count invariant under noise.
pub(crate) fn reseed_for_search(env: &mut OptimizationEnv, seed: u64) {
    if let Some(noise_seed) = env.config().noise_seed {
        env.reseed_noise(mlir_rl_agent::episode_seed(noise_seed, seed));
    }
}

/// Snapshot of an environment's cache counters, to attribute a delta of
/// lookups to one search (the counters survive `env.reset`, which zeroes
/// only the per-episode accounting).
pub(crate) struct LookupMeter {
    hits: u64,
    misses: u64,
}

impl LookupMeter {
    pub(crate) fn start(env: &OptimizationEnv) -> Self {
        Self {
            hits: env.cache().hits(),
            misses: env.cache().misses(),
        }
    }

    /// `(evaluations, cache_hits)` observed since `start`.
    pub(crate) fn finish(&self, env: &OptimizationEnv) -> (usize, usize) {
        (
            (env.cache().misses() - self.misses) as usize,
            (env.cache().hits() - self.hits) as usize,
        )
    }
}

/// Replays an action sequence on a fresh episode and returns the resulting
/// per-operation schedules (the materialized best schedule).
pub(crate) fn materialize_schedule(
    env: &mut OptimizationEnv,
    module: &Module,
    actions: &[Action],
) -> Vec<Schedule> {
    env.reset(module.clone());
    for action in actions {
        env.step(action);
    }
    env.scheduled()
        .map(|s| s.states().iter().map(|st| st.schedule.clone()).collect())
        .unwrap_or_default()
}

/// The best terminal state a search has found so far: its estimated time
/// and the action sequence that reproduces it.
pub(crate) struct BestFound {
    pub(crate) time_s: f64,
    pub(crate) actions: Vec<Action>,
}

/// Assembles a [`SearchOutcome`] from a finished search: materializes the
/// best schedule by replay and reads the lookup meter.
pub(crate) fn finish_outcome(
    name: String,
    env: &mut OptimizationEnv,
    module: &Module,
    meter: &LookupMeter,
    baseline_s: f64,
    best: BestFound,
    nodes_expanded: usize,
) -> SearchOutcome {
    let best_schedule = materialize_schedule(env, module, &best.actions);
    let (evaluations, cache_hits) = meter.finish(env);
    SearchOutcome {
        searcher: name,
        module: module.name().to_string(),
        baseline_s,
        best_s: best.time_s,
        speedup: if best.time_s > 0.0 {
            baseline_s / best.time_s
        } else {
            1.0
        },
        best_actions: best.actions,
        best_schedule,
        nodes_expanded,
        evaluations,
        cache_hits,
    }
}
