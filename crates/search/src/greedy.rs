//! Greedy policy decoding — the paper's deployment behavior.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use mlir_rl_agent::PolicyModel;
use mlir_rl_env::{Action, OptimizationEnv};
use mlir_rl_ir::Module;
use mlir_rl_obs::EventKind;

use crate::searcher::{
    finish_outcome, max_episode_steps, reseed_for_search, BestFound, LookupMeter, SearchOutcome,
    Searcher,
};

/// Greedy decoding: one episode taking the policy's most probable action at
/// every step. Zero search on top of the policy; every other searcher is
/// measured against this.
///
/// Greedy selection consumes **no** RNG draws — a contract the service's
/// cross-request inference aggregator (`mlir_rl_agent::aggregator`)
/// depends on: greedy rows can join any batch without shifting another
/// request's RNG stream, so aggregated and direct runs stay bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GreedyPolicy;

/// One greedy episode. Shared with [`crate::BeamSearch`], which seeds its
/// best-so-far with the greedy trajectory.
pub(crate) struct GreedyRollout {
    pub(crate) actions: Vec<Action>,
    /// Noise-free estimate of the untransformed schedule.
    pub(crate) baseline_s: f64,
    /// Noise-free estimate of the final schedule.
    pub(crate) final_s: f64,
    pub(crate) steps: usize,
}

/// Runs one greedy episode, scoring the baseline and the final schedule
/// through the noise-free cache peek.
pub(crate) fn greedy_rollout<P: PolicyModel>(
    env: &mut OptimizationEnv,
    policy: &mut P,
    module: &Module,
    rng: &mut ChaCha8Rng,
) -> GreedyRollout {
    let max_steps = max_episode_steps(env, module);
    let probe = env.probe().clone();
    let mut obs = env.reset(module.clone());
    let baseline_s = env.peek_time_s();
    let mut actions = Vec::new();
    while let Some(current) = obs {
        let record = policy.select_action(&current, true, rng);
        let op = current.op.0 as u64;
        let outcome = env.step(&record.action);
        probe.emit(
            EventKind::GreedyStep,
            None,
            [actions.len() as u64, op, outcome.applied as u64],
        );
        actions.push(record.action);
        obs = outcome.observation;
        if actions.len() > max_steps {
            break;
        }
    }
    let steps = actions.len();
    let final_s = env.peek_time_s();
    GreedyRollout {
        actions,
        baseline_s,
        final_s,
        steps,
    }
}

impl<P: PolicyModel> Searcher<P> for GreedyPolicy {
    fn name(&self) -> String {
        "greedy-policy".to_string()
    }

    fn search(
        &self,
        env: &mut OptimizationEnv,
        policy: &mut P,
        module: &Module,
        seed: u64,
    ) -> SearchOutcome {
        let meter = LookupMeter::start(env);
        reseed_for_search(env, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rollout = greedy_rollout(env, policy, module, &mut rng);
        finish_outcome(
            Searcher::<P>::name(self),
            env,
            module,
            &meter,
            rollout.baseline_s,
            BestFound {
                time_s: rollout.final_s,
                actions: rollout.actions,
            },
            rollout.steps,
        )
    }
}
