//! Portfolio-optimize the DL-operator evaluation workloads through the
//! request/response service API: train a quick policy, spawn an
//! `OptimizationService`, and submit one `SearchSpec::Portfolio` request
//! per workload — the whole roster (greedy decode, beam,
//! progressively-widened MCTS, random) runs per request on the service's
//! one persistent evaluation cache, round-robin first and then racing with
//! a target speedup where the first member past the target ends the race.
//!
//! Run with `cargo run --release --example portfolio_search`.

use mlir_rl_core::{MlirRlOptimizer, OptimizationRequest, OptimizerConfig};
use mlir_rl_search::{PortfolioMode, SearchSpec};
use mlir_rl_workloads::dl_ops;

fn roster(mode: PortfolioMode) -> SearchSpec {
    SearchSpec::Portfolio {
        members: vec![
            SearchSpec::Greedy,
            SearchSpec::beam(4),
            SearchSpec::Mcts {
                iterations: 48,
                branch: 4,
                widening: Some((1.0, 0.6)),
            },
            SearchSpec::random(24),
        ],
        mode,
        budget: None,
    }
}

fn main() {
    let dataset = dl_ops::training_dataset(0.02, 7);
    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    println!("training on {} single-operator examples ...", dataset.len());
    optimizer.train(&dataset, 6);

    let workloads: Vec<_> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .collect();
    let workers = mlir_rl_agent::default_rollout_workers();
    let service = optimizer.spawn_service(workers);
    println!(
        "\nserving {} portfolio requests over {workers} worker(s):\n",
        workloads.len()
    );

    for mode in [
        PortfolioMode::RoundRobin,
        PortfolioMode::Racing {
            target_speedup: 8.0,
        },
    ] {
        let spec = roster(mode);
        let pending = service.submit_batch(
            workloads
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    OptimizationRequest::new(m.clone(), spec.clone()).with_seed(500 + i as u64)
                })
                .collect(),
        );
        let responses = mlir_rl_core::wait_all(&pending);

        // Aggregate speedups and per-member attribution from the
        // responses' portfolio outcomes.
        let geomean = (responses
            .iter()
            .map(|r| r.speedup().max(1e-12).ln())
            .sum::<f64>()
            / responses.len() as f64)
            .exp();
        let evaluations: usize = responses.iter().map(|r| r.evaluations).sum();
        let lookups: usize = responses.iter().map(|r| r.total_lookups()).sum();
        println!(
            "  {:<18} geomean speedup {:>6.2}x | {:>6} cost-model evals | request hit-rate {:>5.1}% | mean service {:>6.1}ms",
            format!("{mode:?}"),
            geomean,
            evaluations,
            100.0 * (lookups - evaluations) as f64 / lookups.max(1) as f64,
            1e3 * responses.iter().map(|r| r.service_s).sum::<f64>() / responses.len() as f64,
        );
        for rank in 0..4 {
            let rows: Vec<_> = responses
                .iter()
                .filter_map(|r| r.outcome.as_ref())
                .filter_map(|o| o.members.iter().find(|m| m.rank == rank))
                .collect();
            println!(
                "    rank {rank} {:<14} wins {:>2}  reached-target {:>2}  evals {:>6}",
                rows.first().map(|m| m.member.as_str()).unwrap_or("-"),
                rows.iter().filter(|m| m.winner).count(),
                rows.iter().filter(|m| m.reached_target).count(),
                rows.iter().map(|m| m.evaluations).sum::<usize>(),
            );
        }
    }
    let stats = service.stats();
    println!(
        "\nservice lifetime: {} completed requests, shared-cache hit-rate {:.1}%;",
        stats.completed,
        stats.cache_hit_rate() * 100.0
    );
    println!("every member of every request scores schedules through the service's");
    println!("one persistent cache, so requests warm each other up — and racing ends");
    println!("each request's roster as soon as the lowest-ranked member past the");
    println!("target finishes (deterministically — see the service docs).");
}
