//! Portfolio-optimize the DL-operator evaluation workloads: train a quick
//! policy, then run a roster of searchers (greedy decode, beam,
//! progressively-widened MCTS, random) as one `Portfolio` — round-robin on
//! a shared evaluation cache, and racing with a target speedup where the
//! first member past the target ends the race.
//!
//! Run with `cargo run --release --example portfolio_search`.

use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
use mlir_rl_search::{BeamSearch, GreedyPolicy, Mcts, Portfolio, RandomSearch};
use mlir_rl_workloads::dl_ops;

fn roster(
    base: Portfolio<mlir_rl_agent::PolicyNetwork>,
) -> Portfolio<mlir_rl_agent::PolicyNetwork> {
    base.with_member(GreedyPolicy)
        .with_member(BeamSearch::new(4))
        .with_member(Mcts::new(48).with_progressive_widening(1.0, 0.6))
        .with_member(RandomSearch::new(24))
}

fn main() {
    let dataset = dl_ops::training_dataset(0.02, 7);
    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    println!("training on {} single-operator examples ...", dataset.len());
    optimizer.train(&dataset, 6);

    let workloads: Vec<_> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .collect();
    let workers = mlir_rl_agent::default_rollout_workers();
    println!(
        "\nportfolio-optimizing {} workloads over {workers} worker(s):\n",
        workloads.len()
    );

    for portfolio in [
        roster(Portfolio::round_robin()),
        roster(Portfolio::racing(8.0)),
    ] {
        let report = optimizer.optimize_portfolio_batch(&workloads, &portfolio, workers);
        println!(
            "  {:<18} geomean speedup {:>6.2}x | {:>6} cost-model evals | shared-cache hit-rate {:>5.1}% | {:.2}s",
            format!("{:?}", portfolio.mode()),
            report.geomean_speedup(),
            report.total_evaluations(),
            report.shared_cache_hit_rate() * 100.0,
            report.wall_s,
        );
        for member in report.member_attribution() {
            println!(
                "    rank {} {:<14} wins {:>2}  reached-target {:>2}  evals {:>6}",
                member.rank, member.member, member.wins, member.reached_target, member.evaluations,
            );
        }
    }
    println!("\nevery member scores schedules through one shared cache, so the");
    println!("portfolio reaches the best-of-members schedule for less estimator");
    println!("spend than running the members independently; racing ends each");
    println!("module's search as soon as the lowest-ranked member past the");
    println!("target finishes (deterministically — see the crate docs).");
}
