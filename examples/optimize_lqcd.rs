//! Optimize the LQCD correlator applications of Table IV and compare MLIR RL
//! against the Halide-autoscheduler analogue (Mullapudi).
//!
//! Run with `cargo run --release --example optimize_lqcd`.

use mlir_rl_agent::{PolicyHyperparams, PpoConfig};
use mlir_rl_baselines::{speedup_over_mlir, Baseline, MullapudiAutoscheduler};
use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
use mlir_rl_costmodel::MachineModel;
use mlir_rl_env::{EnvConfig, InterchangeMode};
use mlir_rl_workloads::{lqcd, LqcdApplication};

fn main() {
    // Deep LQCD nests need the full 12-loop representation.
    let env = EnvConfig {
        max_loops: 12,
        max_operands: 6,
        max_rank: 6,
        interchange_mode: InterchangeMode::LevelPointers,
        ..EnvConfig::paper()
    };
    let config = OptimizerConfig {
        env,
        machine: MachineModel::xeon_e5_2680_v4(),
        hyper: PolicyHyperparams {
            hidden_size: 32,
            backbone_layers: 2,
        },
        ppo: PpoConfig {
            trajectories_per_iteration: 8,
            minibatch_size: 16,
            update_epochs: 2,
            ..PpoConfig::paper()
        },
        seed: 0,
    };
    let mut optimizer = MlirRlOptimizer::new(config);
    let dataset = lqcd::training_dataset(0.01, 5);
    println!("training on {} LQCD kernels ...", dataset.len());
    optimizer.train(&dataset, 5);

    let machine = MachineModel::xeon_e5_2680_v4();
    let mullapudi = MullapudiAutoscheduler::new();
    println!("\n{:<28}{:>12}{:>12}", "benchmark", "MLIR RL", "Mullapudi");
    for app in LqcdApplication::ALL {
        let module = app.module();
        let rl = optimizer.optimize(&module).speedup;
        let mp = speedup_over_mlir(&mullapudi.optimize(&module), &module, &machine);
        println!(
            "{:<28}{rl:>12.2}{mp:>12.2}",
            format!("{} (S={})", app.name(), app.input_size())
        );
    }
}
