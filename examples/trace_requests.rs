//! Trace a batch of requests through a live `OptimizationService`: turn
//! tracing on with one `ServiceConfig` knob, serve a mixed stream, then
//! walk each request's lifecycle span (submitted → queued → dispatched →
//! running → terminal) and its searcher phase events from the merged
//! trace snapshot. Exports the same snapshot three ways — Chrome
//! trace-event JSON for `chrome://tracing`/Perfetto, a JSONL event log,
//! and the unified Prometheus-style metrics exposition — and measures the
//! recorder's per-event overhead.
//!
//! Run with `cargo run --release --example trace_requests`.

use mlir_rl_core::{
    wait_all, MlirRlOptimizer, OptimizationRequest, OptimizerConfig, ServiceConfig,
};
use mlir_rl_ir::{Module, ModuleBuilder};
use mlir_rl_obs::{recorder_overhead_ns, EventKind};
use mlir_rl_search::SearchSpec;

fn workload(rows: u64, name: &str) -> Module {
    let mut b = ModuleBuilder::new(name);
    let a = b.argument("A", vec![rows, 128]);
    let w = b.argument("B", vec![128, 64]);
    let mm = b.matmul(a, w);
    b.relu(mm);
    b.finish()
}

fn main() {
    let modules = [
        workload(64, "m64"),
        workload(96, "m96"),
        workload(128, "m128"),
    ];
    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    optimizer.train(&modules, 4);

    // One knob: per-ring event capacity. Everything else is unchanged —
    // tracing is purely observational, so responses (and their
    // fingerprints) are bit-identical to an untraced service.
    let service =
        optimizer.spawn_service_with(&ServiceConfig::quick().with_workers(2).with_tracing(8192));

    let specs = [
        SearchSpec::Greedy,
        SearchSpec::beam(3),
        SearchSpec::Mcts {
            iterations: 6,
            branch: 2,
            widening: Some((1.0, 0.6)),
        },
        SearchSpec::random(3),
        SearchSpec::racing(vec![SearchSpec::Greedy, SearchSpec::beam(2)], 0.0),
    ];
    let requests: Vec<OptimizationRequest> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            OptimizationRequest::new(modules[i % modules.len()].clone(), spec.clone())
                .with_seed(100 + i as u64)
        })
        .collect();
    let responses = wait_all(&service.submit_batch(requests));

    // Each response names its trace; the snapshot merges every ring
    // (submit side + one per worker) into one timestamp-sorted view.
    let snapshot = service.trace_snapshot().expect("tracing is on");
    println!("== per-request lifecycle ==");
    for response in &responses {
        let trace_id = response.trace_id.expect("traced service stamps ids");
        let events = snapshot.for_trace(trace_id);
        let phases: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        println!(
            "request {:>2} ({:<22}) trace {:>2}: {} events [{}]",
            response.id,
            response.searcher,
            trace_id,
            events.len(),
            phases.join(" → "),
        );
    }

    println!("\n== searcher phase event totals ==");
    for kind in [
        EventKind::GreedyStep,
        EventKind::BeamDepth,
        EventKind::MctsIteration,
        EventKind::RandomEpisode,
        EventKind::MemberBegin,
        EventKind::MemberWin,
        EventKind::CacheHit,
        EventKind::CacheMiss,
    ] {
        println!("{:<16} {}", kind.name(), snapshot.count(kind));
    }

    // Exporters: same snapshot, three audiences.
    let chrome = snapshot.to_chrome_json();
    let jsonl = snapshot.to_jsonl();
    let path = std::env::temp_dir().join("mlir_rl_trace.json");
    std::fs::write(&path, &chrome).expect("write trace");
    println!(
        "\nChrome trace ({} bytes) written to {} — open in chrome://tracing or Perfetto",
        chrome.len(),
        path.display()
    );
    println!(
        "JSONL log: {} lines; recorder overhead ~{:.0} ns/event",
        jsonl.lines().count(),
        recorder_overhead_ns(1 << 16),
    );

    println!("\n== unified metrics exposition (excerpt) ==");
    for line in service
        .prometheus()
        .lines()
        .filter(|l| !l.starts_with('#'))
        .take(12)
    {
        println!("{line}");
    }
}
