//! Optimize a full neural-network model (ResNet-18) operator by operator,
//! as in Table III, and compare against the PyTorch-analogue baselines.
//!
//! Run with `cargo run --release --example optimize_resnet`.

use mlir_rl_baselines::{speedup_over_mlir, Baseline, VendorLibrary, VendorMode};
use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
use mlir_rl_costmodel::MachineModel;
use mlir_rl_workloads::{models, NeuralNetwork};

fn main() {
    let model = NeuralNetwork::ResNet18;
    let module = model.module();
    println!(
        "{}: {} operations, composition {:?}",
        model.name(),
        module.ops().len(),
        models::op_composition(&module)
    );

    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    optimizer.train(std::slice::from_ref(&module), 3);
    let outcome = optimizer.optimize(&module);
    println!(
        "MLIR RL speedup over MLIR baseline: {:.2}x ({} environment steps)",
        outcome.speedup, outcome.steps
    );

    let machine = MachineModel::xeon_e5_2680_v4();
    for mode in [VendorMode::Eager, VendorMode::Compiled] {
        let vendor = VendorLibrary::new(mode);
        println!(
            "{:<18} speedup over MLIR baseline: {:.2}x",
            vendor.name(),
            speedup_over_mlir(&vendor.optimize(&module), &module, &machine)
        );
    }
}
