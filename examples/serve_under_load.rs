//! Serve a synthetic burst against a hardened `OptimizationService`:
//! a bounded queue that answers overflow with `backpressure:` rejections,
//! per-client in-flight quotas and deficit-weighted fair scheduling
//! between a priority client and a batch client, end-to-end deadlines
//! (shed at dequeue, cooperatively stopped mid-run), and the
//! `ServiceMetrics` snapshot that makes all of it observable.
//!
//! Run with `cargo run --release --example serve_under_load`.

use std::time::Duration;

use mlir_rl_core::{
    MlirRlOptimizer, OptimizationRequest, OptimizerConfig, ResponseStatus, ServiceConfig,
};
use mlir_rl_ir::{Module, ModuleBuilder};
use mlir_rl_search::SearchSpec;

fn workload(rows: u64, name: &str) -> Module {
    let mut b = ModuleBuilder::new(name);
    let a = b.argument("A", vec![rows, 128]);
    let w = b.argument("B", vec![128, 64]);
    let mm = b.matmul(a, w);
    b.relu(mm);
    b.finish()
}

fn main() {
    let modules = [
        workload(64, "m64"),
        workload(96, "m96"),
        workload(128, "m128"),
    ];
    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    optimizer.train(&modules, 4);

    // The hardening knobs: a queue bounded well below the burst size, one
    // in-flight request per client, and a 3:1 scheduling weight in favor
    // of the priority client. Zero values fail validation instead of
    // wedging the pool.
    let config = ServiceConfig::quick()
        .with_workers(2)
        .with_queue_capacity(6)
        .with_client_quota(1)
        .with_client_weight("priority", 3)
        .with_client_weight("batch", 1);
    let service = optimizer.spawn_service_with(&config);

    // An open-loop burst twice the queue bound: the overflow is answered
    // synchronously with a `backpressure:` rejection — the submitter is
    // never blocked and queue memory stays flat. Batch requests carry a
    // deadline; ones that spend too long queued are shed instead of run.
    println!("\nsubmitting a burst of 12 requests against a queue of 6:\n");
    let pending: Vec<_> = (0..12)
        .map(|i| {
            let module = modules[i % modules.len()].clone();
            let spec = if i % 2 == 0 {
                SearchSpec::Greedy
            } else {
                SearchSpec::beam(2)
            };
            let request = OptimizationRequest::new(module, spec).with_seed(i as u64);
            let request = if i % 2 == 0 {
                request.with_client("priority")
            } else {
                request
                    .with_client("batch")
                    .with_deadline(Duration::from_millis(200))
            };
            service.submit(request)
        })
        .collect();

    for (i, handle) in pending.iter().enumerate() {
        // Poll with a timeout first (a serving loop would do other work
        // here), then block for the final answer.
        let response = match handle.wait_timeout(Duration::from_millis(20)) {
            Some(response) => response,
            None => handle.wait(),
        };
        let note = match response.status {
            ResponseStatus::Completed => format!(
                "speedup {:.2}x, queued {:.1}ms",
                response.outcome.as_ref().expect("completed").speedup,
                response.queue_s * 1e3,
            ),
            _ => response.error.clone().unwrap_or_default(),
        };
        let client = if i % 2 == 0 { "priority" } else { "batch" };
        println!("  #{i:<2} {client:<10} {:?}: {note}", response.status);
    }

    let m = service.metrics();
    println!(
        "\nmetrics: {} submitted = {} completed + {} stopped + {} skipped + {} rejected",
        m.submitted, m.completed, m.stopped, m.skipped, m.rejected
    );
    println!(
        "  backpressure: {} overflow rejects, queue high-water {} (bound 6)",
        m.overflow_rejects, m.queue_high_water
    );
    println!(
        "  deadlines: {} shed at dequeue, {} stopped mid-run; fairness: {} quota deferrals over {} client lanes",
        m.deadline_sheds, m.deadline_stops, m.quota_deferrals, m.clients
    );
    println!(
        "  latency: queue p50 {:.1}ms / p99 {:.1}ms, service p50 {:.1}ms / p99 {:.1}ms",
        m.queue_p50_s * 1e3,
        m.queue_p99_s * 1e3,
        m.service_p50_s * 1e3,
        m.service_p99_s * 1e3
    );
    println!(
        "  cache hit-rate {:.1}%, budget spent {} (cap {:?})",
        m.cache_hit_rate() * 100.0,
        m.budget_spent,
        m.budget_cap
    );
    println!("\nmachine-readable snapshot:\n{}", m.to_json());
}
