//! Batch-optimize the DL-operator evaluation workloads with the schedule
//! searchers: train a quick policy, then drive greedy decoding, beam
//! search, MCTS and random search through the parallel `SearchDriver`
//! (all searches share one sharded cost-model cache).
//!
//! Run with `cargo run --release --example search_schedules`.

use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
use mlir_rl_search::{BeamSearch, GreedyPolicy, Mcts, RandomSearch, Searcher};
use mlir_rl_workloads::dl_ops;

fn main() {
    let dataset = dl_ops::training_dataset(0.02, 7);
    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    println!("training on {} single-operator examples ...", dataset.len());
    optimizer.train(&dataset, 6);

    let workloads: Vec<_> = dl_ops::evaluation_benchmark()
        .into_iter()
        .map(|(_, m)| m)
        .collect();
    let workers = mlir_rl_agent::default_rollout_workers();
    println!(
        "\nbatch-optimizing {} workloads over {workers} worker(s):\n",
        workloads.len()
    );

    let searchers: Vec<Box<dyn Searcher<mlir_rl_agent::PolicyNetwork>>> = vec![
        Box::new(GreedyPolicy),
        Box::new(BeamSearch::new(4)),
        Box::new(Mcts::new(48)),
        Box::new(RandomSearch::new(24)),
    ];
    for searcher in &searchers {
        let report = optimizer.optimize_batch(&workloads, searcher.as_ref(), workers);
        println!(
            "  {:<12} geomean speedup {:>6.2}x | {:>6} cost-model evals | shared-cache hit-rate {:>5.1}% | {:.2}s",
            searcher.name(),
            report.geomean_speedup(),
            report.total_evaluations(),
            report.shared_cache_hit_rate() * 100.0,
            report.wall_s,
        );
    }
    println!("\nbeam search is seeded with the greedy trajectory, so its geomean");
    println!("dominates greedy decoding at every budget.");
}
