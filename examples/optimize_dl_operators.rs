//! Optimize the Fig. 5 deep-learning operator benchmark with a quickly
//! trained MLIR RL agent and print per-family speedups.
//!
//! Run with `cargo run --release --example optimize_dl_operators`.

use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
use mlir_rl_workloads::{dl_ops, DlOperator};

fn main() {
    let dataset = dl_ops::training_dataset(0.02, 7);
    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    println!("training on {} single-operator examples ...", dataset.len());
    let history = optimizer.train(&dataset, 6);
    if let Some(last) = history.last() {
        println!(
            "after {} iterations: geomean training speedup {:.2}x",
            history.len(),
            last.geomean_speedup
        );
    }

    println!("\nper-family evaluation (unseen shapes):");
    for family in DlOperator::ALL {
        let shapes: Vec<_> = dl_ops::evaluation_benchmark()
            .into_iter()
            .filter(|(k, _)| *k == family)
            .map(|(_, m)| m)
            .collect();
        let speedups: Vec<f64> = shapes
            .iter()
            .map(|m| optimizer.optimize(m).speedup)
            .collect();
        let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
        println!(
            "  {:<12} average speedup over MLIR baseline: {avg:.2}x",
            family.name()
        );
    }
}
