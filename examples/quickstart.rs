//! Quickstart: build a small Linalg module, stand up an `OptimizationService`
//! around a quickly-trained MLIR RL agent, and serve optimization requests
//! against it — then compare with the hand-written baselines.
//!
//! Run with `cargo run --example quickstart`.

use mlir_rl_baselines::{speedup_over_mlir, Baseline, VendorLibrary, VendorMode};
use mlir_rl_core::{MlirRlOptimizer, OptimizationRequest, OptimizerConfig};
use mlir_rl_costmodel::MachineModel;
use mlir_rl_ir::{printer::print_module, ModuleBuilder};
use mlir_rl_search::SearchSpec;

fn main() {
    // The paper's running example: a 256x1024 by 1024x512 matmul followed by
    // a ReLU.
    let mut b = ModuleBuilder::new("quickstart");
    let a = b.argument("A", vec![256, 1024]);
    let w = b.argument("B", vec![1024, 512]);
    let mm = b.matmul(a, w);
    b.relu(mm);
    let module = b.finish();

    println!("--- input module ---\n{}", print_module(&module));

    // Train a quick, laptop-scale policy on the module itself, then hand it
    // to a long-lived service: the deployment surface. The service owns the
    // policy snapshot and one persistent evaluation cache that every
    // request warms for every later request.
    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    optimizer.train(std::slice::from_ref(&module), 4);
    let service = optimizer.spawn_service(2);

    // Submit requests: greedy decoding (the paper's deployment) and a
    // beam-4 search, each fully determined by (module, spec, seed).
    let pending = service.submit_batch(vec![
        OptimizationRequest::new(module.clone(), SearchSpec::Greedy).with_seed(1),
        OptimizationRequest::new(module.clone(), SearchSpec::beam(4)).with_seed(1),
    ]);
    for handle in &pending {
        let response = handle.wait();
        let outcome = response.outcome.as_ref().expect("valid requests complete");
        println!(
            "{:<16} baseline {:.4}s -> optimized {:.4}s  (speedup {:.2}x, {} nodes, {} cache hits, queued {:.1}ms)",
            response.searcher,
            outcome.baseline_s,
            outcome.best_s,
            outcome.speedup,
            outcome.nodes_expanded,
            response.cache_hits,
            response.queue_s * 1e3,
        );
    }
    let stats = service.stats();
    println!(
        "service: {} requests served, cache hit-rate {:.1}%",
        stats.completed,
        stats.cache_hit_rate() * 100.0
    );

    // Compare against the vendor-library analogue of PyTorch.
    let machine = MachineModel::xeon_e5_2680_v4();
    for mode in [VendorMode::Eager, VendorMode::Compiled] {
        let baseline = VendorLibrary::new(mode);
        let result = baseline.optimize(&module);
        println!(
            "{:<16} speedup over MLIR baseline: {:.2}x",
            baseline.name(),
            speedup_over_mlir(&result, &module, &machine)
        );
    }
}
