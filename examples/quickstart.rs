//! Quickstart: build a small Linalg module, optimize it with an (untrained)
//! MLIR RL agent, and compare against the hand-written baselines.
//!
//! Run with `cargo run --example quickstart`.

use mlir_rl_baselines::{speedup_over_mlir, Baseline, VendorLibrary, VendorMode};
use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
use mlir_rl_costmodel::MachineModel;
use mlir_rl_ir::{printer::print_module, ModuleBuilder};

fn main() {
    // The paper's running example: a 256x1024 by 1024x512 matmul followed by
    // a ReLU.
    let mut b = ModuleBuilder::new("quickstart");
    let a = b.argument("A", vec![256, 1024]);
    let w = b.argument("B", vec![1024, 512]);
    let mm = b.matmul(a, w);
    b.relu(mm);
    let module = b.finish();

    println!("--- input module ---\n{}", print_module(&module));

    // Optimize with MLIR RL (a quick, laptop-scale configuration; train for a
    // few iterations on the module itself to specialize the policy).
    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    optimizer.train(std::slice::from_ref(&module), 4);
    let outcome = optimizer.optimize(&module);
    println!(
        "MLIR RL:         baseline {:.4}s -> optimized {:.4}s  (speedup {:.2}x, {} steps)",
        outcome.baseline_s, outcome.optimized_s, outcome.speedup, outcome.steps
    );

    // Compare against the vendor-library analogue of PyTorch.
    let machine = MachineModel::xeon_e5_2680_v4();
    for mode in [VendorMode::Eager, VendorMode::Compiled] {
        let baseline = VendorLibrary::new(mode);
        let result = baseline.optimize(&module);
        println!(
            "{:<16} speedup over MLIR baseline: {:.2}x",
            baseline.name(),
            speedup_over_mlir(&result, &module, &machine)
        );
    }
}
