//! Train an MLIR RL agent with PPO on the mixed dataset (DL operators,
//! operator sequences and LQCD kernels) and print the training curve.
//!
//! Run with `cargo run --release --example train_agent`. Use the
//! `MLIR_RL_ITERATIONS` environment variable to train longer.

use mlir_rl_core::{MlirRlOptimizer, OptimizerConfig};
use mlir_rl_workloads::full_training_dataset;

fn main() {
    let iterations: usize = std::env::var("MLIR_RL_ITERATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8);
    let dataset = full_training_dataset(0.01, 17);
    println!(
        "training for {iterations} PPO iterations on {} code samples",
        dataset.len()
    );

    let mut optimizer = MlirRlOptimizer::new(OptimizerConfig::quick());
    optimizer.train(&dataset, iterations);

    println!(
        "\niteration   geomean-speedup   mean-reward   policy-loss   value-loss   evaluations"
    );
    for s in optimizer.training_history() {
        println!(
            "{:>9}   {:>15.3}   {:>11.3}   {:>11.4}   {:>10.4}   {:>11}",
            s.iteration,
            s.geomean_speedup,
            s.mean_reward,
            s.policy_loss,
            s.value_loss,
            s.cumulative_evaluations
        );
    }
}
